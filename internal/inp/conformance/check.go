package conformance

import (
	"bytes"
	"fmt"
	"reflect"

	"fractal/internal/inp"
)

// CheckTrace is the differential oracle for one trace: evaluate the spec,
// replay the trace on every stack, and require (a) each stack to match
// the spec's frame-by-frame expectation and (b) all stacks to match each
// other byte-for-byte. nil means the trace conforms everywhere.
func CheckTrace(stacks []Stack, tr Trace) error {
	ex, err := Eval(tr)
	if err != nil {
		return fmt.Errorf("spec eval: %w", err)
	}
	outs := make([]*Outcome, len(stacks))
	for i, st := range stacks {
		out, err := Run(st, tr, ex)
		if err != nil {
			return fmt.Errorf("stack %s: %w", st.Name(), err)
		}
		if err := compareToModel(ex, out); err != nil {
			return fmt.Errorf("stack %s diverges from spec: %w", out.Stack, err)
		}
		outs[i] = out
	}
	for i := 1; i < len(outs); i++ {
		if err := compareOutcomes(outs[0], outs[i]); err != nil {
			return fmt.Errorf("stacks disagree: %w", err)
		}
	}
	return nil
}

// compareToModel checks one stack's observation against the spec.
func compareToModel(ex *Expect, out *Outcome) error {
	if len(out.Steps) != len(ex.Steps) {
		return fmt.Errorf("observed %d steps, spec expects %d", len(out.Steps), len(ex.Steps))
	}
	terminated := false
	for i, est := range ex.Steps {
		so := out.Steps[i]
		if so.QueueErr != est.QueueErr {
			return fmt.Errorf("step %d: queue error = %v, spec expects %v", i, so.QueueErr, est.QueueErr)
		}
		if so.SendErr != "" {
			return fmt.Errorf("step %d: send failed (%s), spec expects the write to land", i, so.SendErr)
		}
		if len(so.Replies) != len(est.Replies) {
			return fmt.Errorf("step %d: observed %d replies %v, spec expects %d %v",
				i, len(so.Replies), so.Replies, len(est.Replies), est.Replies)
		}
		for j, want := range est.Replies {
			got := so.Replies[j]
			if got.Err != "" {
				return fmt.Errorf("step %d reply %d: got error %q, spec expects %v", i, j, got.Err, want)
			}
			if got.Type != want.Type || got.Version != want.Version || got.Seq != want.Seq {
				return fmt.Errorf("step %d reply %d: got %v, spec expects %v", i, j, got, want)
			}
		}
		wantTerm := obsNone
		switch est.Term {
		case TermServerClosed:
			wantTerm = errClosed
		case TermDriverReject:
			wantTerm = errSeq
		}
		if so.TermErr != wantTerm {
			return fmt.Errorf("step %d: terminal observation %q, spec expects %q", i, so.TermErr, wantTerm)
		}
		if est.Term != TermNone {
			terminated = true
		}
	}
	if terminated {
		if out.DrainErr != obsNone {
			return fmt.Errorf("drain observation %q on a terminated trace", out.DrainErr)
		}
	} else if out.DrainErr != errClosed {
		return fmt.Errorf("drain observation %q, spec expects a clean close", out.DrainErr)
	}
	if out.DriverBinary != ex.DriverBinary {
		return fmt.Errorf("final client encoding binary=%v, spec expects %v", out.DriverBinary, ex.DriverBinary)
	}
	return nil
}

// compareOutcomes requires two stacks' observations to be identical,
// reply body bytes included: the TCP writev path and the netsim path
// must produce the same octets.
func compareOutcomes(a, b *Outcome) error {
	if len(a.Steps) != len(b.Steps) {
		return fmt.Errorf("%s observed %d steps, %s observed %d", a.Stack, len(a.Steps), b.Stack, len(b.Steps))
	}
	for i := range a.Steps {
		sa, sb := a.Steps[i], b.Steps[i]
		if sa.QueueErr != sb.QueueErr || sa.SendErr != sb.SendErr || sa.TermErr != sb.TermErr {
			return fmt.Errorf("step %d: %s=(queue %v, send %q, term %q) vs %s=(queue %v, send %q, term %q)",
				i, a.Stack, sa.QueueErr, sa.SendErr, sa.TermErr, b.Stack, sb.QueueErr, sb.SendErr, sb.TermErr)
		}
		if len(sa.Replies) != len(sb.Replies) {
			return fmt.Errorf("step %d: %s got %d replies, %s got %d", i, a.Stack, len(sa.Replies), b.Stack, len(sb.Replies))
		}
		for j := range sa.Replies {
			ra, rb := sa.Replies[j], sb.Replies[j]
			if ra.Err != rb.Err || ra.Type != rb.Type || ra.Version != rb.Version || ra.Seq != rb.Seq {
				return fmt.Errorf("step %d reply %d: %s got %v, %s got %v", i, j, a.Stack, ra, b.Stack, rb)
			}
			if !bytes.Equal(ra.Body, rb.Body) {
				return fmt.Errorf("step %d reply %d (%v): body bytes differ between %s (%d B) and %s (%d B)",
					i, j, ra.Type, a.Stack, len(ra.Body), b.Stack, len(rb.Body))
			}
		}
	}
	if a.DrainErr != b.DrainErr {
		return fmt.Errorf("drain: %s=%q vs %s=%q", a.Stack, a.DrainErr, b.Stack, b.DrainErr)
	}
	if a.DriverBinary != b.DriverBinary {
		return fmt.Errorf("final encoding: %s binary=%v vs %s binary=%v", a.Stack, a.DriverBinary, b.Stack, b.DriverBinary)
	}
	return nil
}

// CheckEncodings replays a valid (unmutated) trace twice on one stack —
// once advertising only v1 JSON, once advertising Version2 — and requires
// the decoded reply bodies to be equivalent: the binary fast path must be
// an encoding, not a different protocol.
func CheckEncodings(stack Stack, tr Trace) error {
	j := tr.clone()
	j.Binary = false
	b := tr.clone()
	b.Binary = true
	oj, err := runFor(stack, j)
	if err != nil {
		return err
	}
	ob, err := runFor(stack, b)
	if err != nil {
		return err
	}
	if len(oj.Steps) != len(ob.Steps) {
		return fmt.Errorf("json ran %d steps, binary %d", len(oj.Steps), len(ob.Steps))
	}
	for i := range oj.Steps {
		sj, sb := oj.Steps[i], ob.Steps[i]
		if len(sj.Replies) != len(sb.Replies) {
			return fmt.Errorf("step %d: json got %d replies, binary %d", i, len(sj.Replies), len(sb.Replies))
		}
		for k := range sj.Replies {
			rj, rb := sj.Replies[k], sb.Replies[k]
			if rj.Err != rb.Err || rj.Type != rb.Type || rj.Seq != rb.Seq {
				return fmt.Errorf("step %d reply %d: json %v vs binary %v", i, k, rj, rb)
			}
			if rj.Err != "" {
				continue
			}
			vj, err := decodeReply(rj)
			if err != nil {
				return fmt.Errorf("step %d reply %d: decoding json reply: %w", i, k, err)
			}
			vb, err := decodeReply(rb)
			if err != nil {
				return fmt.Errorf("step %d reply %d: decoding binary reply: %w", i, k, err)
			}
			if !reflect.DeepEqual(vj, vb) {
				return fmt.Errorf("step %d reply %d (%v): decoded bodies differ between encodings:\njson:   %+v\nbinary: %+v",
					i, k, rj.Type, vj, vb)
			}
		}
	}
	if oj.DrainErr != ob.DrainErr {
		return fmt.Errorf("drain: json %q vs binary %q", oj.DrainErr, ob.DrainErr)
	}
	return nil
}

func runFor(stack Stack, tr Trace) (*Outcome, error) {
	ex, err := Eval(tr)
	if err != nil {
		return nil, fmt.Errorf("spec eval: %w", err)
	}
	out, err := Run(stack, tr, ex)
	if err != nil {
		return nil, err
	}
	if cerr := compareToModel(ex, out); cerr != nil {
		return nil, fmt.Errorf("stack %s diverges from spec: %w", out.Stack, cerr)
	}
	return out, nil
}

// decodeReply decodes an observed reply body into its typed struct via
// the version-aware decoder, so JSON and binary replies become
// comparable values.
func decodeReply(r RecvObs) (interface{}, error) {
	var v interface{}
	switch r.Type {
	case inp.MsgInitRep:
		v = new(inp.InitRep)
	case inp.MsgCliMetaReq:
		v = new(inp.CliMetaReq)
	case inp.MsgPADMetaRep:
		v = new(inp.PADMetaRep)
	case inp.MsgAppRep:
		v = new(inp.AppRep)
	case inp.MsgPADDownloadRep:
		v = new(inp.PADDownloadRep)
	case inp.MsgAppMetaAck:
		v = new(inp.AppMetaAck)
	case inp.MsgError:
		v = new(inp.ErrorRep)
	default:
		return nil, fmt.Errorf("no decoder for reply type %v", r.Type)
	}
	h := inp.Header{Version: r.Version, Type: r.Type, Seq: r.Seq}
	if err := inp.DecodeRaw(h, r.Body, v); err != nil {
		return nil, err
	}
	return v, nil
}
