package conformance

import (
	"fmt"
	"time"

	"fractal/internal/appserver"
	"fractal/internal/cdn"
	"fractal/internal/core"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// The fixed vocabulary the trace selectors index. Index 0 is the valid
// choice; the spec's semantic predicates are written against these names,
// and NewWorld verifies the built world actually matches them.
const (
	validApp      = "webapp"
	unknownApp    = "ghost"
	pushApp       = "pushapp"
	validResource = "page-000"
	badResource   = "page-404"
	validPAD      = "pad-gzip"
	badPAD        = "pad-ghost"
)

// worldPages is how many corpus pages the app server installs; resources
// are named page-000 .. page-00(worldPages-1).
const worldPages = 4

func appIDFor(sel int) string {
	switch sel {
	case 1:
		return unknownApp
	case 2:
		return ""
	}
	return validApp
}

func resourceFor(sel int) string {
	if sel != 0 {
		return badResource
	}
	return validResource
}

func protoFor(sel int) string {
	if sel != 0 {
		return "pad-bogus"
	}
	return validPAD
}

func padFor(sel int) string {
	if sel != 0 {
		return badPAD
	}
	return validPAD
}

func envFor(sel int) core.Env {
	if sel != 0 {
		return core.Env{
			Dev:  core.DevMeta{OSType: core.OSWinCE, CPUType: core.CPUTypePXA255, CPUMHz: 400, MemMB: 64},
			Ntwk: core.NtwkMeta{NetworkType: core.NetBluetooth, BandwidthKbps: 723},
		}
	}
	return core.Env{
		Dev:  core.DevMeta{OSType: core.OSFedora, CPUType: core.CPUTypeP4, CPUMHz: 2000, MemMB: 512},
		Ntwk: core.NtwkMeta{NetworkType: core.NetLAN, BandwidthKbps: 100000},
	}
}

// worldMeta is the case-study one-level PAT (Figure 8) under the given
// application id, with distinguishable per-PAD costs so different
// environments negotiate different PADs.
func worldMeta(appID string) core.AppMeta {
	pad := func(id, proto string, clientStd time.Duration, traffic int64) core.PADMeta {
		return core.PADMeta{
			ID: id, Protocol: proto, Size: 4096,
			Overhead: core.PADOverhead{ClientCompStd: clientStd, TrafficBytes: traffic},
		}
	}
	return core.AppMeta{
		AppID: appID,
		PADs: []core.PADMeta{
			pad("pad-direct", "direct", 0, 140000),
			pad("pad-gzip", "gzip", 40*time.Millisecond, 50000),
			pad("pad-bitmap", "bitmap", 85*time.Millisecond, 30000),
		},
	}
}

// pushMetaFor returns the AppMeta an OpMetaPush step carries: a valid
// topology under a second application id, or (bad) one that fails
// validation so the proxy must answer Ack{OK:false} and drop the conn.
func pushMetaFor(bad bool) core.AppMeta {
	if bad {
		return core.AppMeta{AppID: ""} // fails AppMeta.Validate
	}
	return worldMeta(pushApp)
}

// World is the set of server-side fixtures a conformance run talks to:
// one adaptation proxy, one application server, and one PAD origin, all
// built deterministically except for the module signing key — which is
// why both stacks must share a single World, so the PAD module bytes they
// serve are identical.
type World struct {
	Proxy *proxy.Server
	App   *appserver.INPServer
	PAD   *cdn.PADServer

	proxyCore *proxy.Proxy
	appCore   *appserver.Server
	origin    *cdn.Origin
}

// quietf discards server session logs; mutated traces make servers
// complain by design.
func quietf(string, ...interface{}) {}

// NewWorld builds the shared fixture set and sanity-checks that it
// matches the vocabulary the spec's predicates assume.
func NewWorld() (*World, error) {
	ms, err := core.CaseStudyMatrices()
	if err != nil {
		return nil, err
	}
	model := core.OverheadModel{
		Matrices:          ms,
		Rho:               0.8,
		ServerCPUMHz:      2000,
		IncludeServerComp: true,
		SessionRequests:   75,
	}
	proxyCore, err := proxy.New(model, 128)
	if err != nil {
		return nil, err
	}
	if err := proxyCore.PushAppMeta(worldMeta(validApp)); err != nil {
		return nil, err
	}

	signer, err := mobilecode.NewSigner("conformance-app-server")
	if err != nil {
		return nil, err
	}
	appCore, err := appserver.New(validApp, signer)
	if err != nil {
		return nil, err
	}
	v1, err := workload.Generate(workload.Config{
		Pages: worldPages, TextBytes: 2048, Images: 2, ImageBytes: 16384, Seed: 100,
	})
	if err != nil {
		return nil, err
	}
	v2, err := workload.MutateCorpus(v1, workload.DefaultMutation(101))
	if err != nil {
		return nil, err
	}
	if err := appCore.InstallCorpus(v1, v2); err != nil {
		return nil, err
	}
	if err := appCore.DeployPADs("1.0"); err != nil {
		return nil, err
	}

	origin, err := cdn.NewOrigin(netsim.SharedServer{
		Name: "conformance-origin", UplinkKbps: 100000, Rho: 0.9, BaseRTT: time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	if err := appCore.PublishPADs(origin); err != nil {
		return nil, err
	}

	w := &World{proxyCore: proxyCore, appCore: appCore, origin: origin}
	if w.Proxy, err = proxy.NewServer(proxyCore, 64, quietf); err != nil {
		return nil, err
	}
	if w.App, err = appserver.NewINPServer(appCore, 64, quietf); err != nil {
		return nil, err
	}
	if w.PAD, err = cdn.NewPADServer(origin, 64, quietf); err != nil {
		return nil, err
	}
	return w, w.check()
}

// check verifies the built world satisfies the spec vocabulary: the model
// hardcodes these predicates instead of calling into the servers, so a
// fixture drift must fail loudly here rather than as a phantom
// conformance divergence.
func (w *World) check() error {
	deployed := false
	for _, id := range w.appCore.PADIDs() {
		if id == validPAD {
			deployed = true
		}
		if id == badPAD {
			return fmt.Errorf("conformance: %q unexpectedly deployed", badPAD)
		}
	}
	if !deployed {
		return fmt.Errorf("conformance: %q not among deployed PADs %v", validPAD, w.appCore.PADIDs())
	}
	if n := w.appCore.Resources(); n != worldPages {
		return fmt.Errorf("conformance: app server has %d resources, want %d", n, worldPages)
	}
	if _, err := w.origin.Get("/pads/" + validPAD); err != nil {
		return fmt.Errorf("conformance: origin missing %s: %w", validPAD, err)
	}
	if _, err := w.origin.Get("/pads/" + badPAD); err == nil {
		return fmt.Errorf("conformance: origin unexpectedly has %s", badPAD)
	}
	return nil
}
