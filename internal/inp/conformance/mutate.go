package conformance

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"fractal/internal/inp"
)

// frameHeaderLen is the INP frame header size. The spec re-declares the
// wire constants it mutates instead of reaching into package inp: the
// whole point of an executable spec is an independent statement of the
// format, so a silent change to the header layout fails conformance
// instead of being mirrored invisibly.
const frameHeaderLen = 16

const (
	offVersion = 4  // header byte carrying the protocol version
	offType    = 5  // header byte carrying the message type
	offSeq     = 8  // big-endian uint32 sequence number
	offLen     = 12 // big-endian uint32 body length
)

// renderFrame encodes one spec-level frame to wire bytes through the real
// frame writer, so the bytes the model mutates are identical to the bytes
// the system under test stages for the same header and body.
func renderFrame(h inp.Header, body interface{}) ([]byte, error) {
	var buf bytes.Buffer
	fw := inp.NewFrameWriter(&buf)
	if err := fw.WriteMessage(h, body); err != nil {
		return nil, err
	}
	if err := fw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// splitFrames cuts a batch of whole frames out of one flushed write. The
// driver's rewriting conn is never a *net.TCPConn, so the frame writer
// coalesces every batch into a single Write of complete frames; a short
// or misaligned batch is a harness bug, not a protocol outcome.
func splitFrames(p []byte) ([][]byte, error) {
	var frames [][]byte
	for off := 0; off < len(p); {
		if len(p)-off < frameHeaderLen {
			return nil, fmt.Errorf("conformance: %d stray bytes after %d frames", len(p)-off, len(frames))
		}
		n := int(binary.BigEndian.Uint32(p[off+offLen : off+offLen+4]))
		end := off + frameHeaderLen + n
		if end > len(p) {
			return nil, fmt.Errorf("conformance: frame %d claims %d body bytes, %d available", len(frames), n, len(p)-off-frameHeaderLen)
		}
		frames = append(frames, append([]byte(nil), p[off:end]...))
		off = end
	}
	return frames, nil
}

// applyOutMuts rewrites one step's staged frames according to its
// outbound mutations and reports whether the connection must be
// half-closed after the write (truncation). hist is every post-mutation
// frame written earlier on the connection, the replay pool. Both the
// model and the driver run this same code over byte-identical inputs, so
// a mutated trace means the same corrupted byte stream on both sides.
func applyOutMuts(muts []Mutation, frames [][]byte, hist [][]byte) (out [][]byte, closeAfter bool) {
	out = make([][]byte, len(frames))
	for i, f := range frames {
		out[i] = append([]byte(nil), f...)
	}
	for _, m := range muts {
		switch m.Kind {
		case MutDupFrame:
			if len(out) == 0 {
				continue
			}
			i := m.Frame % len(out)
			dup := append([]byte(nil), out[i]...)
			out = append(out[:i+1], append([][]byte{dup}, out[i+1:]...)...)
		case MutReplay:
			pool := make([][]byte, 0, len(hist)+len(out))
			pool = append(pool, hist...)
			pool = append(pool, out...)
			if len(pool) == 0 {
				continue
			}
			src := pool[int(m.Sel)%len(pool)]
			out = append(out, append([]byte(nil), src...))
		case MutSeqDelta:
			if len(out) == 0 {
				continue
			}
			f := out[m.Frame%len(out)]
			seq := binary.BigEndian.Uint32(f[offSeq : offSeq+4])
			binary.BigEndian.PutUint32(f[offSeq:offSeq+4], uint32(int64(seq)+int64(m.Delta)))
		case MutWrongType:
			if len(out) == 0 {
				continue
			}
			out[m.Frame%len(out)][offType] = m.Type
		case MutVersion2:
			if len(out) == 0 {
				continue
			}
			out[m.Frame%len(out)][offVersion] = 2
		case MutTrailing:
			if len(out) == 0 {
				continue
			}
			f := out[m.Frame%len(out)]
			n := 1 + int(m.Sel)%16
			for j := 0; j < n; j++ {
				f = append(f, 0xFF)
			}
			bodyLen := binary.BigEndian.Uint32(f[offLen : offLen+4])
			binary.BigEndian.PutUint32(f[offLen:offLen+4], bodyLen+uint32(n))
			out[m.Frame%len(out)] = f
		case MutTruncate:
			if len(out) == 0 {
				continue
			}
			last := out[len(out)-1]
			if len(last) < 2 {
				continue
			}
			cut := 1 + int(m.Sel)%(len(last)-1)
			out[len(out)-1] = last[:len(last)-cut]
			closeAfter = true
		}
	}
	return out, closeAfter
}

// hasInbound returns the step's first inbound mutation, if any.
func hasInbound(s Step) (Mutation, bool) {
	for _, m := range s.Muts {
		switch m.Kind {
		case MutInDupReply, MutInStaleV2, MutInDelay:
			return m, true
		}
	}
	return Mutation{}, false
}

// binaryCapable mirrors the v2 type lattice: the hot message types that
// have a binary body codec. Re-declared here (not exported from inp) so
// the spec states the lattice independently; a drift between the two
// lists surfaces as a version-byte divergence in every binary trace.
func binaryCapable(t inp.MsgType) bool {
	switch t {
	case inp.MsgAppReq, inp.MsgAppRep, inp.MsgPADDownloadReq, inp.MsgPADDownloadRep,
		inp.MsgInitReq, inp.MsgInitRep, inp.MsgCliMetaReq, inp.MsgCliMetaRep, inp.MsgPADMetaRep:
		return true
	}
	return false
}
