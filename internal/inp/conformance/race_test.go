//go:build race

package conformance

// raceEnabled reports that the race detector is instrumenting this
// build; the fixed-seed suite runs a sample instead of the full
// CI-smoke budget.
const raceEnabled = true
