package conformance

import (
	"fmt"
	"net"
	"time"

	"fractal/internal/netsim"
)

// TCPStack serves the world over real loopback TCP listeners — the
// production transport, vectored writev path included.
type TCPStack struct {
	w     *World
	addrs map[Target]string
	lns   []net.Listener
}

// NewTCPStack starts one listener per target on loopback.
func NewTCPStack(w *World) (*TCPStack, error) {
	s := &TCPStack{w: w, addrs: map[Target]string{}}
	serve := map[Target]func(net.Listener) error{
		TargetProxy: w.Proxy.Serve,
		TargetApp:   w.App.Serve,
		TargetPAD:   w.PAD.Serve,
	}
	for _, t := range []Target{TargetProxy, TargetApp, TargetPAD} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("conformance: listening for %v: %w", t, err)
		}
		s.lns = append(s.lns, ln)
		s.addrs[t] = ln.Addr().String()
		go func(fn func(net.Listener) error, ln net.Listener) {
			_ = fn(ln) // exits on Close
		}(serve[t], ln)
	}
	return s, nil
}

func (s *TCPStack) Name() string { return "tcp" }

// Dial connects to the target's listener.
func (s *TCPStack) Dial(t Target) (net.Conn, error) {
	return net.DialTimeout("tcp", s.addrs[t], 5*time.Second)
}

// Close shuts the listeners down; server front ends drain in-flight
// sessions via their own Close.
func (s *TCPStack) Close() {
	s.w.Proxy.Close()
	s.w.App.Close()
	s.w.PAD.Close()
	for _, ln := range s.lns {
		ln.Close()
	}
}

// PipeStack serves the same world over in-memory netsim stream pairs: no
// sockets, no writev — the simulated transport the netsim experiments
// run on. Each Dial spawns a server goroutine on the peer endpoint,
// exactly as the accept loop would.
type PipeStack struct {
	w *World
}

// NewPipeStack wraps the world.
func NewPipeStack(w *World) *PipeStack { return &PipeStack{w: w} }

func (s *PipeStack) Name() string { return "netsim" }

// Dial returns the client end of a fresh stream pair, with the matching
// server loop running on the other end.
func (s *PipeStack) Dial(t Target) (net.Conn, error) {
	serve := map[Target]func(net.Conn) error{
		TargetProxy: s.w.Proxy.ServeConn,
		TargetApp:   s.w.App.ServeConn,
		TargetPAD:   s.w.PAD.ServeConn,
	}[t]
	client, server := netsim.StreamPair()
	go func() {
		defer server.Close()
		_ = serve(server)
	}()
	return client, nil
}
