package conformance

import "testing"

// The three wire-state bugs the conformance model flushed out, pinned as
// shrunk model-derived traces. Each trace made CheckTrace fail against
// the pre-fix inp.Conn and must stay green forever after.

// Bug 1: Conn.Queue consumed a sequence number even when encoding the
// body failed, so the first frame after a failed staging attempt went
// out with seq N+2 and the server dropped the session at the gate. The
// spec says a failed Queue is invisible on the wire.
func TestRegressionQueueFailureBurnsNoSeq(t *testing.T) {
	ss := bothStacks(t)
	tr := Trace{Target: TargetProxy, Steps: []Step{
		{Op: OpQueueBad},
		{Op: OpInitBurst},
	}}
	if err := CheckTrace(ss, tr); err != nil {
		t.Fatalf("queue-failure trace diverges:\n%v%v", tr, err)
	}
}

// Bug 2: Conn.Recv flipped the connection to binary before the sequence
// gate ran, so a stale replayed frame re-stamped Version2 — one a
// conforming client must reject — still upgraded the encoding state of
// a v1 session. Rejected frames must not mutate connection state.
func TestRegressionRejectedV2FrameDoesNotUpgrade(t *testing.T) {
	ss := bothStacks(t)
	tr := Trace{Target: TargetPAD, Steps: []Step{
		{Op: OpPADReq},
		{Op: OpPADReq, Muts: []Mutation{{Kind: MutInStaleV2}}},
	}}
	if err := CheckTrace(ss, tr); err != nil {
		t.Fatalf("stale-v2 trace diverges:\n%v%v", tr, err)
	}
}

// Bug 3: SetTimeout(0) left a previously armed absolute deadline on the
// socket, so a conn reconfigured to wait indefinitely still failed at a
// stale wall-clock instant. The delayed reply here arrives well after
// the old deadline would have fired; a conforming conn waits for it.
func TestRegressionSetTimeoutZeroDisarms(t *testing.T) {
	ss := bothStacks(t)
	tr := Trace{Target: TargetApp, Steps: []Step{
		{Op: OpSetTimeout, Ms: 250},
		{Op: OpAppReq},
		{Op: OpSetTimeout, Ms: 0},
		{Op: OpAppReq, Muts: []Mutation{{Kind: MutInDelay, Ms: 600}}},
	}}
	if err := CheckTrace(ss, tr); err != nil {
		t.Fatalf("stale-deadline trace diverges:\n%v%v", tr, err)
	}
}
