//go:build !race

package inp

const raceEnabled = false
