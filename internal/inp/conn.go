package inp

import (
	"errors"
	"fmt"
	"io"
	"time"

	"fractal/internal/arena"
)

// PeerError is an in-band MsgError reported by the peer. It is a typed
// error so transports can tell an application-level refusal (the stream
// stays framed and usable) from a transport-level failure (the stream
// position is unknown and the connection must be abandoned).
type PeerError struct {
	Message string
}

// Error preserves the historical "inp: peer error: ..." rendering.
func (e *PeerError) Error() string {
	if e.Message == "" {
		return "inp: peer error (unparseable body)"
	}
	return "inp: peer error: " + e.Message
}

// ErrSeqMismatch reports a reply whose sequence number is not the next
// one expected from the peer: a stale, duplicated, or replayed frame.
var ErrSeqMismatch = errors.New("inp: sequence mismatch")

// deadlineRW is the subset of net.Conn needed for bounded calls. A plain
// io.ReadWriter (in-process pipe, bytes.Buffer) simply has no deadline
// support and calls stay unbounded, as before.
type deadlineRW interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Conn is a sequential INP endpoint over a byte stream: it stamps outgoing
// sequence numbers, verifies that inbound sequence numbers advance by
// exactly one per frame (rejecting stale or duplicated frames), and offers
// a call helper for the request/response pattern of Figure 4. Writes are
// batched through a FrameWriter: Queue stages frames and Flush emits the
// burst as one vectored write, so a pipelined phase costs one syscall per
// direction (Send is Queue+Flush for the single-frame case). A Conn
// serves one session and is not safe for concurrent use.
type Conn struct {
	rw io.ReadWriter
	// r is the read side: rw directly, or the session read buffer.
	r       io.Reader
	fw      FrameWriter
	brd     bufReader
	sess    *arena.Session
	body    []byte // session-scoped reusable body buffer
	seq     uint32
	peerSeq uint32
	// timeout, when nonzero and rw supports deadlines, bounds each
	// individual read and write so a stalled peer cannot block a call
	// forever.
	timeout time.Duration
	// armedR/armedW record that this Conn armed an absolute deadline on rw
	// that it has not yet cleared, so disabling the bound (SetTimeout(0))
	// knows whether there is a stale deadline to remove — and never touches
	// deadlines some other owner (a server idle policy) armed itself.
	armedR, armedW bool
	// binary records that the peer has proven Version2 support (it sent a
	// v2 frame, or advertised WireVersion >= 2 and the server called
	// EnableBinary); hot bodies are then emitted with the binary codec.
	binary bool
}

// NewConn wraps a byte stream (typically a net.Conn).
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{rw: rw, r: rw}
	c.fw.init(rw)
	return c
}

// NewConnSession wraps a byte stream with session-scoped buffering: reads
// go through an arena-backed buffer (enabling pipeline detection via
// InputPending) and message bodies reuse one arena buffer across Recvs,
// so the raw slice returned by Recv is valid only until the next Recv.
// The caller owns sess and releases it after the Conn is abandoned.
func NewConnSession(rw io.ReadWriter, sess *arena.Session) *Conn {
	c := NewConn(rw)
	c.sess = sess
	b := sess.Bytes(readBufSize)
	//fractal:allow hotpath — the Conn and its session share a lifetime; the caller releases sess only after abandoning the Conn
	c.brd = bufReader{src: rw, buf: b[:readBufSize]}
	c.r = &c.brd
	return c
}

// SetTimeout arms a per-operation I/O deadline: every subsequent send or
// receive must complete within d. It is a no-op if the underlying stream
// has no deadline support. Zero disables the bound and clears any
// deadline a previous bounded operation left armed on the stream, so a
// later long-running call cannot fail against a stale absolute deadline.
func (c *Conn) SetTimeout(d time.Duration) {
	if d <= 0 {
		if drw, ok := c.rw.(deadlineRW); ok {
			if c.armedR {
				_ = drw.SetReadDeadline(time.Time{})
				c.armedR = false
			}
			if c.armedW {
				_ = drw.SetWriteDeadline(time.Time{})
				c.armedW = false
			}
		}
	}
	c.timeout = d
}

// EnableBinary switches hot body types to the Version2 binary codec.
// Servers call it after a request advertises WireVersion >= Version2;
// clients normally never call it — they upgrade automatically when the
// peer answers with a Version2 frame.
func (c *Conn) EnableBinary() { c.binary = true }

// BinaryEnabled reports whether hot bodies are being sent in binary.
func (c *Conn) BinaryEnabled() bool { return c.binary }

// InputPending reports whether undrained inbound bytes already sit in the
// session read buffer — i.e. the peer pipelined another frame behind the
// one just consumed. Always false on conns without a session.
func (c *Conn) InputPending() bool {
	return c.sess != nil && c.brd.buffered() > 0
}

// armRead applies the per-operation read deadline, if any.
func (c *Conn) armRead() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadlineRW); ok {
		_ = d.SetReadDeadline(time.Now().Add(c.timeout))
		c.armedR = true
	}
}

// armWrite applies the per-operation write deadline, if any.
func (c *Conn) armWrite() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadlineRW); ok {
		_ = d.SetWriteDeadline(time.Now().Add(c.timeout))
		c.armedW = true
	}
}

// Queue frames one message with the next sequence number into the write
// batch; nothing reaches the stream until Flush. Hot body types use the
// binary codec once the peer has proven Version2 support.
func (c *Conn) Queue(t MsgType, body interface{}) error {
	// The sequence number is committed only once the frame is staged: if
	// encoding fails nothing reaches the wire, so consuming a seq here
	// would make the next successful frame skip one and be rejected by a
	// healthy peer with ErrSeqMismatch.
	h := Header{Version: Version, Type: t, Seq: c.seq + 1}
	if c.binary && binaryMsgType(t) && binaryEncodable(t, body) {
		h.Version = Version2
	}
	if err := c.fw.WriteMessage(h, body); err != nil {
		return err
	}
	c.seq++
	return nil
}

// Flush writes the queued batch as one vectored write.
func (c *Conn) Flush() error {
	c.armWrite()
	return c.fw.Flush()
}

// Send frames and writes one message with the next sequence number.
func (c *Conn) Send(t MsgType, body interface{}) error {
	if err := c.Queue(t, body); err != nil {
		return err
	}
	return c.Flush()
}

// Recv reads the next message and verifies its sequence number advances
// the peer's stream by exactly one, so a duplicated or stale frame can
// never be accepted as the answer to a newer request. On session conns
// the returned raw body is valid only until the next Recv.
func (c *Conn) Recv() (Header, []byte, error) {
	c.armRead()
	var h Header
	var raw []byte
	var err error
	if c.sess != nil {
		h, raw, err = c.readReuse()
	} else {
		h, raw, err = ReadMessage(c.r)
	}
	if err != nil {
		return h, raw, err
	}
	if h.Seq != c.peerSeq+1 {
		return h, raw, fmt.Errorf("%w: got %v seq %d, expected %d", ErrSeqMismatch, h.Type, h.Seq, c.peerSeq+1)
	}
	c.peerSeq = h.Seq
	if h.Version >= Version2 {
		// The peer emits v2 frames, so it decodes them too: upgrade.
		// Only an *accepted* frame mutates conn state — a stale or
		// replayed v2 frame rejected above must not flip the encoding.
		c.binary = true
	}
	return h, raw, nil
}

// readReuse reads one frame into the connection's session-scoped body
// buffer, growing it through the arena under the same incremental
// reservation cap as ReadMessage (a hostile header alone cannot size a
// 64 MB allocation).
//
//fractal:hotpath the server read path reuses the session body buffer
func (c *Conn) readReuse() (Header, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return Header{}, nil, fmt.Errorf("inp: reading header: %w", err)
	}
	h, n, err := parseHeader(hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	if c.body == nil {
		reserve := n
		if reserve > maxBodyReserve {
			reserve = maxBodyReserve
		}
		//fractal:allow hotpath — body shares the Conn's session lifetime (see NewConnSession)
		c.body = c.sess.Bytes(int(reserve))
	}
	body := c.body[:0]
	for len(body) < int(n) {
		step := int(n) - len(body)
		if step > maxBodyReserve {
			step = maxBodyReserve
		}
		off := len(body)
		if cap(body)-off < step {
			body = c.sess.Grow(body, step)
		}
		body = body[:off+step]
		if _, err := io.ReadFull(c.r, body[off:]); err != nil {
			//fractal:allow hotpath — body shares the Conn's session lifetime; kept so grown storage is reused
			c.body = body[:0]
			return Header{}, nil, fmt.Errorf("inp: reading %v body: %w", h.Type, err)
		}
	}
	//fractal:allow hotpath — body shares the Conn's session lifetime (see NewConnSession)
	c.body = body
	return h, body, nil
}

// RecvInto reads the next message, requires it to be of the wanted type,
// and decodes it into reply. A peer MsgError is surfaced as a *PeerError.
func (c *Conn) RecvInto(want MsgType, reply interface{}) error {
	h, raw, err := c.Recv()
	if err != nil {
		return err
	}
	if h.Type == MsgError {
		var e ErrorRep
		if derr := DecodeBody(raw, &e); derr == nil && e.Message != "" {
			return &PeerError{Message: e.Message}
		}
		return &PeerError{}
	}
	if h.Type != want {
		return fmt.Errorf("inp: expected %v, got %v", want, h.Type)
	}
	if h.Version >= Version2 {
		return decodeBinaryBody(h.Type, raw, reply)
	}
	return DecodeBody(raw, reply)
}

// Call sends a request and decodes the matching reply type.
func (c *Conn) Call(t MsgType, body interface{}, want MsgType, reply interface{}) error {
	if err := c.Send(t, body); err != nil {
		return err
	}
	return c.RecvInto(want, reply)
}

// SendError reports a failure to the peer; it is best-effort and returns
// the write error for logging.
func (c *Conn) SendError(msg string) error {
	return c.Send(MsgError, ErrorRep{Message: msg})
}
