package inp

import (
	"fmt"
	"io"
)

// Conn is a sequential INP endpoint over a byte stream: it stamps outgoing
// sequence numbers and offers a call helper for the request/response
// pattern of Figure 4. A Conn serves one session and is not safe for
// concurrent use.
type Conn struct {
	rw  io.ReadWriter
	seq uint32
}

// NewConn wraps a byte stream (typically a net.Conn).
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// Send frames and writes one message with the next sequence number.
func (c *Conn) Send(t MsgType, body interface{}) error {
	c.seq++
	return WriteMessage(c.rw, Header{Version: Version, Type: t, Seq: c.seq}, body)
}

// Recv reads the next message.
func (c *Conn) Recv() (Header, []byte, error) {
	return ReadMessage(c.rw)
}

// RecvInto reads the next message, requires it to be of the wanted type,
// and decodes it into reply. A peer MsgError is surfaced as an error.
func (c *Conn) RecvInto(want MsgType, reply interface{}) error {
	h, raw, err := c.Recv()
	if err != nil {
		return err
	}
	if h.Type == MsgError {
		var e ErrorRep
		if derr := DecodeBody(raw, &e); derr == nil && e.Message != "" {
			return fmt.Errorf("inp: peer error: %s", e.Message)
		}
		return fmt.Errorf("inp: peer error (unparseable body)")
	}
	if h.Type != want {
		return fmt.Errorf("inp: expected %v, got %v", want, h.Type)
	}
	return DecodeBody(raw, reply)
}

// Call sends a request and decodes the matching reply type.
func (c *Conn) Call(t MsgType, body interface{}, want MsgType, reply interface{}) error {
	if err := c.Send(t, body); err != nil {
		return err
	}
	return c.RecvInto(want, reply)
}

// SendError reports a failure to the peer; it is best-effort and returns
// the write error for logging.
func (c *Conn) SendError(msg string) error {
	return c.Send(MsgError, ErrorRep{Message: msg})
}
