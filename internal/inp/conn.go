package inp

import (
	"errors"
	"fmt"
	"io"
	"time"
)

// PeerError is an in-band MsgError reported by the peer. It is a typed
// error so transports can tell an application-level refusal (the stream
// stays framed and usable) from a transport-level failure (the stream
// position is unknown and the connection must be abandoned).
type PeerError struct {
	Message string
}

// Error preserves the historical "inp: peer error: ..." rendering.
func (e *PeerError) Error() string {
	if e.Message == "" {
		return "inp: peer error (unparseable body)"
	}
	return "inp: peer error: " + e.Message
}

// ErrSeqMismatch reports a reply whose sequence number is not the next
// one expected from the peer: a stale, duplicated, or replayed frame.
var ErrSeqMismatch = errors.New("inp: sequence mismatch")

// deadlineRW is the subset of net.Conn needed for bounded calls. A plain
// io.ReadWriter (in-process pipe, bytes.Buffer) simply has no deadline
// support and calls stay unbounded, as before.
type deadlineRW interface {
	SetReadDeadline(time.Time) error
	SetWriteDeadline(time.Time) error
}

// Conn is a sequential INP endpoint over a byte stream: it stamps outgoing
// sequence numbers, verifies that inbound sequence numbers advance by
// exactly one per frame (rejecting stale or duplicated frames), and offers
// a call helper for the request/response pattern of Figure 4. A Conn
// serves one session and is not safe for concurrent use.
type Conn struct {
	rw      io.ReadWriter
	seq     uint32
	peerSeq uint32
	// timeout, when nonzero and rw supports deadlines, bounds each
	// individual read and write so a stalled peer cannot block a call
	// forever.
	timeout time.Duration
}

// NewConn wraps a byte stream (typically a net.Conn).
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// SetTimeout arms a per-operation I/O deadline: every subsequent send or
// receive must complete within d. It is a no-op if the underlying stream
// has no deadline support. Zero disables the bound.
func (c *Conn) SetTimeout(d time.Duration) { c.timeout = d }

// armRead applies the per-operation read deadline, if any.
func (c *Conn) armRead() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadlineRW); ok {
		_ = d.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

// armWrite applies the per-operation write deadline, if any.
func (c *Conn) armWrite() {
	if c.timeout <= 0 {
		return
	}
	if d, ok := c.rw.(deadlineRW); ok {
		_ = d.SetWriteDeadline(time.Now().Add(c.timeout))
	}
}

// Send frames and writes one message with the next sequence number.
func (c *Conn) Send(t MsgType, body interface{}) error {
	c.seq++
	c.armWrite()
	return WriteMessage(c.rw, Header{Version: Version, Type: t, Seq: c.seq}, body)
}

// Recv reads the next message and verifies its sequence number advances
// the peer's stream by exactly one, so a duplicated or stale frame can
// never be accepted as the answer to a newer request.
func (c *Conn) Recv() (Header, []byte, error) {
	c.armRead()
	h, raw, err := ReadMessage(c.rw)
	if err != nil {
		return h, raw, err
	}
	if h.Seq != c.peerSeq+1 {
		return h, raw, fmt.Errorf("%w: got %v seq %d, expected %d", ErrSeqMismatch, h.Type, h.Seq, c.peerSeq+1)
	}
	c.peerSeq = h.Seq
	return h, raw, nil
}

// RecvInto reads the next message, requires it to be of the wanted type,
// and decodes it into reply. A peer MsgError is surfaced as a *PeerError.
func (c *Conn) RecvInto(want MsgType, reply interface{}) error {
	h, raw, err := c.Recv()
	if err != nil {
		return err
	}
	if h.Type == MsgError {
		var e ErrorRep
		if derr := DecodeBody(raw, &e); derr == nil && e.Message != "" {
			return &PeerError{Message: e.Message}
		}
		return &PeerError{}
	}
	if h.Type != want {
		return fmt.Errorf("inp: expected %v, got %v", want, h.Type)
	}
	return DecodeBody(raw, reply)
}

// Call sends a request and decodes the matching reply type.
func (c *Conn) Call(t MsgType, body interface{}, want MsgType, reply interface{}) error {
	if err := c.Send(t, body); err != nil {
		return err
	}
	return c.RecvInto(want, reply)
}

// SendError reports a failure to the peer; it is best-effort and returns
// the write error for logging.
func (c *Conn) SendError(msg string) error {
	return c.Send(MsgError, ErrorRep{Message: msg})
}
