package inp

import (
	"bytes"
	"testing"
)

// FuzzReadMessage hardens the frame parser against adversarial bytes: it
// must never panic and never allocate unbounded buffers.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteMessage(&seed, Header{Version: Version, Type: MsgInitReq, Seq: 1}, InitReq{AppID: "a"})
	f.Add(seed.Bytes())
	f.Add([]byte("INP1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.Type == MsgInvalid || h.Type >= msgMax {
			t.Fatalf("parser accepted invalid type %v", h.Type)
		}
		if len(body) > MaxBody {
			t.Fatalf("parser returned %d-byte body beyond limit", len(body))
		}
	})
}
