package inp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

// FuzzReadMessage hardens the frame parser against adversarial bytes: it
// must never panic and never allocate unbounded buffers.
func FuzzReadMessage(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteMessage(&seed, Header{Version: Version, Type: MsgInitReq, Seq: 1}, InitReq{AppID: "a"})
	f.Add(seed.Bytes())
	f.Add([]byte("INP1garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h.Type == MsgInvalid || h.Type >= msgMax {
			t.Fatalf("parser accepted invalid type %v", h.Type)
		}
		if len(body) > MaxBody {
			t.Fatalf("parser returned %d-byte body beyond limit", len(body))
		}
	})
}

// referenceFrame is the pre-pooling WriteMessage algorithm (json.Marshal
// plus a separately assembled header), kept as the byte-level pin for the
// pooled encoder.
func referenceFrame(t *testing.T, h Header, body interface{}) []byte {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("reference marshal: %v", err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], magic[:])
	hdr[4] = h.Version
	hdr[5] = uint8(h.Type)
	binary.BigEndian.PutUint32(hdr[8:12], h.Seq)
	binary.BigEndian.PutUint32(hdr[12:16], uint32(len(raw)))
	return append(hdr[:], raw...)
}

// FuzzWriteMessagePooledEquivalence pins the pooled framing: for arbitrary
// string payloads (covering HTML-escaped characters and invalid UTF-8),
// a frame produced through a pooled Conn is byte-identical to the unpooled
// encoding and round-trips through ReadMessage to the same message.
func FuzzWriteMessagePooledEquivalence(f *testing.F) {
	f.Add("webapp", "page-000", "alice", uint32(1))
	f.Add("<script>&", "a\xff\xfeb", "", uint32(0))
	f.Add("", "", "", uint32(1<<31))
	f.Fuzz(func(t *testing.T, appID, resource, clientID string, seq uint32) {
		body := InitReq{AppID: appID, Resource: resource, ClientID: clientID}
		h := Header{Version: Version, Type: MsgInitReq, Seq: seq}
		var got bytes.Buffer
		if err := WriteMessage(&got, h, body); err != nil {
			t.Fatalf("pooled write: %v", err)
		}
		want := referenceFrame(t, h, body)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("pooled frame diverged from reference:\npooled:    %q\nreference: %q", got.Bytes(), want)
		}
		rh, raw, err := ReadMessage(bytes.NewReader(got.Bytes()))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if rh != h {
			t.Fatalf("round-trip header %+v, want %+v", rh, h)
		}
		var back InitReq
		if err := DecodeBody(raw, &back); err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		// json.Marshal coerces invalid UTF-8 to U+FFFD, so compare against
		// what the reference encoding decodes to, not the original input.
		var wantBack InitReq
		if err := DecodeBody(want[headerLen:], &wantBack); err != nil {
			t.Fatalf("reference decode: %v", err)
		}
		if !reflect.DeepEqual(back, wantBack) {
			t.Fatalf("round trip decoded %+v, want %+v", back, wantBack)
		}
	})
}

// TestWriteMessagePooledConcurrent hammers the frame pool from many
// goroutines (run under -race in CI) and checks every frame parses back
// to its own sequence number — a buffer-sharing bug would interleave them.
func TestWriteMessagePooledConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq := uint32(g*1000 + i)
				var buf bytes.Buffer
				if err := WriteMessage(&buf, Header{Version: Version, Type: MsgAppReq, Seq: seq},
					AppReq{AppID: "webapp", Resource: "page", ProtocolIDs: []string{"gzip"}}); err != nil {
					t.Error(err)
					return
				}
				h, _, err := ReadMessage(&buf)
				if err != nil || h.Seq != seq {
					t.Errorf("round trip: h=%+v err=%v, want seq %d", h, err, seq)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
