package rabin

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPolDeg(t *testing.T) {
	if d := DefaultPol.Deg(); d != 53 {
		t.Fatalf("DefaultPol degree = %d, want 53", d)
	}
	if d := Pol(0).Deg(); d != -1 {
		t.Fatalf("zero polynomial degree = %d, want -1", d)
	}
	if d := Pol(1).Deg(); d != 0 {
		t.Fatalf("unit polynomial degree = %d, want 0", d)
	}
}

func TestPolyModReduces(t *testing.T) {
	p := DefaultPol
	for _, a := range []uint64{0, 1, uint64(p), uint64(p) << 3, ^uint64(0) >> 2} {
		m := polyMod(a, p)
		if bitsLen(m) > p.Deg() {
			t.Fatalf("polyMod(%#x) = %#x has degree >= %d", a, m, p.Deg())
		}
	}
	if polyMod(uint64(DefaultPol), DefaultPol) != 0 {
		t.Fatal("p mod p != 0")
	}
}

func bitsLen(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Pol(0x7), 48); err == nil {
		t.Fatal("tiny polynomial accepted")
	}
	if _, err := NewTable(DefaultPol, 1); err == nil {
		t.Fatal("window 1 accepted")
	}
	if _, err := NewTable(DefaultPol, 500); err == nil {
		t.Fatal("oversized window accepted")
	}
	tab, err := NewTable(DefaultPol, 48)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Window() != 48 {
		t.Fatalf("Window() = %d, want 48", tab.Window())
	}
}

// The heart of the rolling property: after rolling any byte sequence
// through the digest, the fingerprint equals the direct fingerprint of the
// last `window` bytes (with leading zeros when fewer have been rolled).
func TestRollingMatchesDirect(t *testing.T) {
	const window = 16
	tab, err := NewTable(DefaultPol, window)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 300)
	rng.Read(data)
	d := tab.NewDigest()
	for i := range data {
		got := d.Roll(data[i])
		// Window content: last `window` bytes ending at i, zero-padded on
		// the left for early positions.
		win := make([]byte, window)
		for j := 0; j < window; j++ {
			src := i - window + 1 + j
			if src >= 0 {
				win[j] = data[src]
			}
		}
		want := tab.Fingerprint(win)
		if got != want {
			t.Fatalf("position %d: rolling fp %#x != direct fp %#x", i, got, want)
		}
	}
}

func TestDigestReset(t *testing.T) {
	tab, err := NewTable(DefaultPol, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := tab.NewDigest()
	for _, b := range []byte("hello world") {
		d.Roll(b)
	}
	first := d.Sum64()
	d.Reset()
	if d.Sum64() != 0 {
		t.Fatal("Reset did not zero fingerprint")
	}
	for _, b := range []byte("hello world") {
		d.Roll(b)
	}
	if d.Sum64() != first {
		t.Fatal("digest not deterministic after Reset")
	}
}

// Property: the rolling fingerprint depends only on the window content,
// never on earlier history.
func TestRollingHistoryIndependenceProperty(t *testing.T) {
	const window = 8
	tab, err := NewTable(DefaultPol, window)
	if err != nil {
		t.Fatal(err)
	}
	f := func(prefixA, prefixB, tail []byte) bool {
		if len(tail) < window {
			tail = append(tail, make([]byte, window-len(tail))...)
		}
		da, db := tab.NewDigest(), tab.NewDigest()
		for _, b := range prefixA {
			da.Roll(b)
		}
		for _, b := range prefixB {
			db.Roll(b)
		}
		var fa, fb uint64
		for _, b := range tail {
			fa = da.Roll(b)
			fb = db.Roll(b)
		}
		return fa == fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testConfig() ChunkerConfig {
	return ChunkerConfig{
		Pol:     DefaultPol,
		Window:  16,
		MinSize: 32,
		MaxSize: 512,
		Mask:    (1 << 6) - 1, // ~64-byte average for small test inputs
		Magic:   0x11,
	}
}

func TestChunkerConfigValidation(t *testing.T) {
	bad := []ChunkerConfig{
		{Pol: DefaultPol, Window: 1, MinSize: 32, MaxSize: 64, Mask: 3},
		{Pol: DefaultPol, Window: 16, MinSize: 8, MaxSize: 64, Mask: 3},
		{Pol: DefaultPol, Window: 16, MinSize: 64, MaxSize: 32, Mask: 3},
		{Pol: DefaultPol, Window: 16, MinSize: 32, MaxSize: 64, Mask: 0},
		{Pol: DefaultPol, Window: 16, MinSize: 32, MaxSize: 64, Mask: 3, Magic: 8},
	}
	for i, cfg := range bad {
		if _, err := NewChunker(cfg); err == nil {
			t.Errorf("case %d: invalid chunker config accepted", i)
		}
	}
	if err := DefaultChunkerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestSplitReconstructs(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 10000)
	rng.Read(data)
	chunks := ch.Split(data)
	if len(chunks) < 2 {
		t.Fatalf("got %d chunks for 10000 random bytes, want several", len(chunks))
	}
	var rebuilt []byte
	prevEnd := 0
	for i, c := range chunks {
		if c.Offset != prevEnd {
			t.Fatalf("chunk %d offset %d, want contiguous %d", i, c.Offset, prevEnd)
		}
		if c.Length < 1 {
			t.Fatalf("chunk %d has length %d", i, c.Length)
		}
		cfg := ch.Config()
		if c.Length > cfg.MaxSize {
			t.Fatalf("chunk %d length %d exceeds max %d", i, c.Length, cfg.MaxSize)
		}
		if i < len(chunks)-1 && c.Length < cfg.MinSize {
			t.Fatalf("non-final chunk %d length %d below min %d", i, c.Length, cfg.MinSize)
		}
		rebuilt = append(rebuilt, data[c.Offset:c.Offset+c.Length]...)
		prevEnd = c.Offset + c.Length
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("concatenated chunks do not reconstruct input")
	}
}

func TestSplitEmptyAndTiny(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.Split(nil); len(got) != 0 {
		t.Fatalf("Split(nil) = %d chunks, want 0", len(got))
	}
	got := ch.Split([]byte{1, 2, 3})
	if len(got) != 1 || got[0].Length != 3 {
		t.Fatalf("Split(tiny) = %+v, want single 3-byte chunk", got)
	}
}

// The content-defined property the paper relies on: inserting bytes near
// the start shifts content, but chunk boundaries resynchronize so most
// chunks keep identical content (identified by their bytes, not offsets).
func TestSplitResynchronizesAfterInsertion(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	orig := make([]byte, 20000)
	rng.Read(orig)
	ins := []byte("INSERTED-BYTES")
	mod := append(append(append([]byte(nil), orig[:100]...), ins...), orig[100:]...)

	digests := func(data []byte) map[string]bool {
		m := map[string]bool{}
		for _, c := range ch.Split(data) {
			m[string(data[c.Offset:c.Offset+c.Length])] = true
		}
		return m
	}
	oldSet := digests(orig)
	shared := 0
	newChunks := ch.Split(mod)
	for _, c := range newChunks {
		if oldSet[string(mod[c.Offset:c.Offset+c.Length])] {
			shared++
		}
	}
	if frac := float64(shared) / float64(len(newChunks)); frac < 0.8 {
		t.Fatalf("only %.0f%% of chunks survived an insertion; content-defined chunking broken", frac*100)
	}
}

// Property: Split always reconstructs and respects the max-size bound.
func TestSplitReconstructionProperty(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		chunks := ch.Split(data)
		var total int
		for _, c := range chunks {
			if c.Length <= 0 || c.Length > ch.Config().MaxSize {
				return false
			}
			if c.Offset != total {
				return false
			}
			total += c.Length
		}
		return total == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterministic(t *testing.T) {
	ch, err := NewChunker(DefaultChunkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 100000)
	rng.Read(data)
	a := ch.Split(data)
	b := ch.Split(data)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDefaultChunkerAverageSize(t *testing.T) {
	ch, err := NewChunker(DefaultChunkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1<<20)
	rng.Read(data)
	chunks := ch.Split(data)
	avg := len(data) / len(chunks)
	// Expected ~768 B (9-bit mask + 256B min); accept a generous band.
	if avg < 384 || avg > 1536 {
		t.Fatalf("average chunk = %d bytes, want ~768B", avg)
	}
}

func BenchmarkRoll(b *testing.B) {
	tab, err := NewTable(DefaultPol, 48)
	if err != nil {
		b.Fatal(err)
	}
	d := tab.NewDigest()
	data := make([]byte, 1<<16)
	rand.New(rand.NewSource(6)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range data {
			d.Roll(c)
		}
	}
}

func BenchmarkSplit(b *testing.B) {
	ch, err := NewChunker(DefaultChunkerConfig())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(7)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Split(data)
	}
}

// chunkedReader returns short reads of varying sizes to stress the
// streaming refill logic.
type chunkedReader struct {
	data []byte
	pos  int
	step int
}

func (r *chunkedReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := r.step
	if n > len(p) {
		n = len(p)
	}
	if r.pos+n > len(r.data) {
		n = len(r.data) - r.pos
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	r.step = r.step%7 + 1 // vary read sizes 1..7... then grow
	if r.step < 64 {
		r.step *= 3
	}
	return n, nil
}

func TestSplitReaderMatchesSplit(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(40))
	data := make([]byte, 50000)
	rng.Read(data)
	want := ch.Split(data)
	var got []Chunk
	var rebuilt []byte
	err = ch.SplitReader(&chunkedReader{data: data, step: 3}, func(c Chunk, b []byte) error {
		got = append(got, c)
		rebuilt = append(rebuilt, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streaming produced %d chunks, Split produced %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d: streaming %+v != split %+v", i, got[i], want[i])
		}
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("streaming chunks do not reconstruct input")
	}
}

func TestSplitReaderEmptyAndErrors(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := ch.SplitReader(bytes.NewReader(nil), func(Chunk, []byte) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("emit called for empty stream")
	}
	if err := ch.SplitReader(bytes.NewReader([]byte("x")), nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	// Emit errors abort.
	data := make([]byte, 5000)
	rand.New(rand.NewSource(41)).Read(data)
	wantErr := fmt.Errorf("stop")
	err = ch.SplitReader(bytes.NewReader(data), func(Chunk, []byte) error { return wantErr })
	if err != wantErr {
		t.Fatalf("emit error not propagated: %v", err)
	}
}

// Property: streaming and in-memory chunking agree for random inputs and
// random read granularities.
func TestSplitReaderEquivalenceProperty(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte, step uint8) bool {
		want := ch.Split(data)
		var got []Chunk
		err := ch.SplitReader(&chunkedReader{data: data, step: int(step%13) + 1}, func(c Chunk, _ []byte) error {
			got = append(got, c)
			return nil
		})
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
