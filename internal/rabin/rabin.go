// Package rabin implements Rabin fingerprinting by random polynomials
// (Rabin, 1981) with a rolling window, and content-defined chunking in the
// style of LBFS: chunk boundaries are declared where the fingerprint of the
// previous window bytes matches a specific value under a bit mask, so that
// boundaries depend on content, not position. This is the mechanism behind
// the paper's Vary-sized blocking protocol (Section 4.1).
package rabin

import (
	"fmt"
	"math/bits"
)

// Pol is a polynomial over GF(2), represented by its coefficient bits. The
// polynomial must be irreducible for good fingerprint behaviour.
type Pol uint64

// DefaultPol is a degree-53 irreducible polynomial widely used for
// content-defined chunking. Degree 53 keeps a byte-shifted fingerprint
// within 64 bits.
const DefaultPol Pol = 0x3DA3358B4DC173

// Deg returns the degree of the polynomial, or -1 for the zero polynomial.
func (p Pol) Deg() int { return bits.Len64(uint64(p)) - 1 }

// polyMod returns a mod p over GF(2).
func polyMod(a uint64, p Pol) uint64 {
	dp := p.Deg()
	for da := bits.Len64(a) - 1; da >= dp; da = bits.Len64(a) - 1 {
		a ^= uint64(p) << (da - dp)
	}
	return a
}

// Table holds the precomputed byte-append and byte-expire tables for one
// (polynomial, window size) pair. Tables are immutable after construction
// and safe for concurrent use.
type Table struct {
	pol    Pol
	window int
	deg    int
	mod    [256]uint64 // reduction of the 8 bits shifted past the degree
	out    [256]uint64 // contribution of a byte leaving the window
}

// NewTable precomputes tables for the polynomial and window size.
func NewTable(pol Pol, window int) (*Table, error) {
	if pol.Deg() < 16 || pol.Deg() > 56 {
		return nil, fmt.Errorf("rabin: polynomial degree %d out of supported range [16,56]", pol.Deg())
	}
	if window < 2 || window > 256 {
		return nil, fmt.Errorf("rabin: window size %d out of range [2,256]", window)
	}
	t := &Table{pol: pol, window: window, deg: pol.Deg()}
	for b := 0; b < 256; b++ {
		// mod[b]: for a value v with top byte b above the degree,
		// v mod p == v ^ mod[b] with the top bits cleared.
		top := uint64(b) << t.deg
		t.mod[b] = polyMod(top, pol) | top
		// out[b]: fingerprint contribution of the oldest in-window byte,
		// i.e. b * x^(8*(window-1)) mod p, so it can be expired by XOR
		// just before the window shifts.
		fp := t.appendByteSlow(0, byte(b))
		for i := 0; i < window-1; i++ {
			fp = t.appendByteSlow(fp, 0)
		}
		t.out[b] = fp
	}
	return t, nil
}

// appendByteSlow is the reference (non-table) append used while building
// the tables themselves.
func (t *Table) appendByteSlow(fp uint64, b byte) uint64 {
	return polyMod(fp<<8|uint64(b), t.pol)
}

// Window returns the window size the table was built for.
func (t *Table) Window() int { return t.window }

// Digest is a rolling fingerprint over the last Window() bytes written.
// The zero Digest is not usable; obtain one from Table.NewDigest.
type Digest struct {
	t    *Table
	fp   uint64
	win  []byte
	wpos int
}

// NewDigest returns a rolling digest over an initially all-zero window.
func (t *Table) NewDigest() *Digest {
	return &Digest{t: t, win: make([]byte, t.window)}
}

// Reset returns the digest to its initial all-zero-window state.
func (d *Digest) Reset() {
	d.fp = 0
	d.wpos = 0
	for i := range d.win {
		d.win[i] = 0
	}
}

// Roll shifts b into the window, expiring the oldest byte, and returns the
// updated fingerprint.
func (d *Digest) Roll(b byte) uint64 {
	out := d.win[d.wpos]
	d.win[d.wpos] = b
	d.wpos++
	if d.wpos == len(d.win) {
		d.wpos = 0
	}
	d.fp ^= d.t.out[out]
	d.fp = d.fp<<8 | uint64(b)
	d.fp ^= d.t.mod[d.fp>>d.t.deg]
	return d.fp
}

// Sum64 returns the current fingerprint.
func (d *Digest) Sum64() uint64 { return d.fp }

// Fingerprint computes the fingerprint of data directly (non-rolling),
// equivalent to rolling data through a fresh digest when len(data) >= the
// window size.
func (t *Table) Fingerprint(data []byte) uint64 {
	fp := uint64(0)
	for _, b := range data {
		fp = fp<<8 | uint64(b)
		fp ^= t.mod[fp>>t.deg]
	}
	return fp
}
