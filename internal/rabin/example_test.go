package rabin_test

import (
	"bytes"
	"fmt"

	"fractal/internal/rabin"
)

// Content-defined chunking survives insertions: boundaries follow content,
// so the chunks after the edit keep their identity.
func ExampleChunker_Split() {
	cfg := rabin.ChunkerConfig{
		Pol:     rabin.DefaultPol,
		Window:  16,
		MinSize: 32,
		MaxSize: 512,
		Mask:    (1 << 6) - 1,
		Magic:   0x11,
	}
	ch, err := rabin.NewChunker(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Deterministic pseudo-content.
	data := make([]byte, 4096)
	x := uint32(2463534242)
	for i := range data {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		data[i] = byte(x)
	}
	orig := ch.Split(data)
	shifted := ch.Split(append([]byte("INSERT"), data...))

	// Count shifted chunks whose content also appears in the original.
	seen := map[string]bool{}
	for _, c := range orig {
		seen[string(data[c.Offset:c.Offset+c.Length])] = true
	}
	mod := append([]byte("INSERT"), data...)
	survived := 0
	for _, c := range shifted {
		if seen[string(mod[c.Offset:c.Offset+c.Length])] {
			survived++
		}
	}
	fmt.Printf("chunks survive insertion: %v\n", survived >= len(shifted)-2)
	fmt.Printf("reconstruction exact: %v\n", rebuild(ch, mod))
	// Output:
	// chunks survive insertion: true
	// reconstruction exact: true
}

func rebuild(ch *rabin.Chunker, data []byte) bool {
	var out []byte
	for _, c := range ch.Split(data) {
		out = append(out, data[c.Offset:c.Offset+c.Length]...)
	}
	return bytes.Equal(out, data)
}
