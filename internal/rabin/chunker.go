package rabin

import (
	"fmt"
	"io"
)

// Chunk is one content-defined region of an input buffer.
type Chunk struct {
	Offset int
	Length int
	Cut    uint64 // fingerprint value at the breakpoint (0 for forced cuts)
}

// ChunkerConfig controls content-defined splitting. Breakpoints are
// declared after at least MinSize bytes wherever the rolling fingerprint of
// the previous Window bytes satisfies fp & Mask == Magic; a chunk is force-
// cut at MaxSize. The paper follows LBFS with a 48-byte window.
type ChunkerConfig struct {
	Pol     Pol
	Window  int
	MinSize int
	MaxSize int
	Mask    uint64
	Magic   uint64
}

// DefaultChunkerConfig mirrors LBFS at a reduced average chunk size suited
// to ~32 KB images: 48-byte window, ~768 B expected chunks (9-bit mask on
// top of a 256 B minimum), 4 KB maximum.
func DefaultChunkerConfig() ChunkerConfig {
	return ChunkerConfig{
		Pol:     DefaultPol,
		Window:  48,
		MinSize: 256,
		MaxSize: 4 * 1024,
		Mask:    (1 << 9) - 1,
		Magic:   0x78,
	}
}

// Validate reports whether the configuration is usable.
func (c ChunkerConfig) Validate() error {
	if c.Window < 2 || c.Window > 256 {
		return fmt.Errorf("rabin: window %d out of range [2,256]", c.Window)
	}
	if c.MinSize < c.Window {
		return fmt.Errorf("rabin: MinSize %d smaller than window %d", c.MinSize, c.Window)
	}
	if c.MaxSize < c.MinSize {
		return fmt.Errorf("rabin: MaxSize %d smaller than MinSize %d", c.MaxSize, c.MinSize)
	}
	if c.Mask == 0 {
		return fmt.Errorf("rabin: zero mask would cut at every byte")
	}
	if c.Magic&^c.Mask != 0 {
		return fmt.Errorf("rabin: magic %#x has bits outside mask %#x", c.Magic, c.Mask)
	}
	return nil
}

// Chunker splits byte buffers into content-defined chunks. It is immutable
// after construction and safe for concurrent use; Split keeps all rolling
// state in locals, so concurrent calls share nothing but the tables.
type Chunker struct {
	cfg ChunkerConfig
	tab *Table
}

// NewChunker builds a chunker for the configuration.
func NewChunker(cfg ChunkerConfig) (*Chunker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tab, err := NewTable(cfg.Pol, cfg.Window)
	if err != nil {
		return nil, err
	}
	return &Chunker{cfg: cfg, tab: tab}, nil
}

// Config returns the chunker's configuration.
func (c *Chunker) Config() ChunkerConfig { return c.cfg }

// Split divides data into chunks. The concatenation of all chunks exactly
// reconstructs data; an empty input yields no chunks. Boundaries are a
// function of local content only (plus the min/max constraints), which is
// the property that lets insertions shift data without invalidating all
// following chunks.
func (c *Chunker) Split(data []byte) []Chunk {
	if len(data) == 0 {
		return nil
	}
	// Expected chunk size is MinSize plus the mask's mean waiting time, so
	// the one append target is usually sized right on the first try.
	expected := c.cfg.MinSize + int(c.cfg.Mask)/2 + 1
	chunks := make([]Chunk, 0, len(data)/expected+1)
	start := 0
	for start < len(data) {
		limit := start + c.cfg.MaxSize
		if limit > len(data) {
			limit = len(data)
		}
		n, cut := c.findCut(data[start:limit])
		chunks = append(chunks, Chunk{Offset: start, Length: n, Cut: cut})
		start += n
	}
	return chunks
}

// findCut locates the first content-defined boundary in window (which is
// already bounded by MaxSize), returning the chunk length and the
// fingerprint at the cut (0 for forced cuts).
//
// This is the hot inner loop of every differencing request, so it rolls in
// bulk over the slice rather than through Digest: no boundary may be
// declared before MinSize, and the fingerprint at any position depends only
// on the Window bytes ending there, so the first MinSize-Window bytes of
// the chunk can be skipped outright (the LBFS min-size optimization). The
// ring buffer disappears too — the expiring byte is just window[i-Window].
// Fingerprints are bit-identical to rolling every byte through Digest.Roll
// from a fresh digest, which TestFindCutMatchesDigestRoll locks in.
func (c *Chunker) findCut(window []byte) (int, uint64) {
	min := c.cfg.MinSize
	if len(window) < min {
		return len(window), 0
	}
	t := c.tab
	deg := t.deg
	mask, magic := c.cfg.Mask, c.cfg.Magic
	// Prime the fingerprint with the Window bytes ending at min-1. A fresh
	// digest's window is all zeros and Table.out[0] == 0, so expiry during
	// priming is a no-op and plain appends suffice.
	var fp uint64
	for _, b := range window[min-c.cfg.Window : min] {
		fp = fp<<8 | uint64(b)
		fp ^= t.mod[fp>>deg]
	}
	if fp&mask == magic {
		return min, fp
	}
	w := c.cfg.Window
	for i := min; i < len(window); i++ {
		fp ^= t.out[window[i-w]]
		fp = fp<<8 | uint64(window[i])
		fp ^= t.mod[fp>>deg]
		if fp&mask == magic {
			return i + 1, fp
		}
	}
	return len(window), 0
}

// SplitReader chunks a stream incrementally in O(MaxSize) memory, calling
// emit for each chunk with its data. The chunk sequence is identical to
// Split over the whole stream. Emit errors abort and are returned.
func (c *Chunker) SplitReader(r io.Reader, emit func(Chunk, []byte) error) error {
	if emit == nil {
		return fmt.Errorf("rabin: SplitReader needs an emit callback")
	}
	buf := make([]byte, 0, 2*c.cfg.MaxSize)
	offset := 0
	eof := false
	for {
		for len(buf) < c.cfg.MaxSize && !eof {
			free := buf[len(buf):cap(buf)]
			n, err := r.Read(free)
			buf = buf[:len(buf)+n]
			if err == io.EOF {
				eof = true
				break
			}
			if err != nil {
				return fmt.Errorf("rabin: reading stream at offset %d: %w", offset+len(buf), err)
			}
		}
		if len(buf) == 0 {
			return nil
		}
		window := buf
		if len(window) > c.cfg.MaxSize {
			window = window[:c.cfg.MaxSize]
		}
		// A forced cut before MaxSize is only valid at true end of input.
		if !eof && len(window) < c.cfg.MaxSize {
			continue
		}
		n, cut := c.findCut(window)
		if err := emit(Chunk{Offset: offset, Length: n, Cut: cut}, buf[:n]); err != nil {
			return err
		}
		offset += n
		buf = append(buf[:0], buf[n:]...)
	}
}
