package rabin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// splitReference is the pre-optimization Split: every byte of every chunk
// rolls through a Digest ring buffer, with the min-size constraint applied
// as a check-skip rather than a roll-skip. The bulk Split must reproduce
// its chunk sequence — offsets, lengths, and Cut fingerprints — exactly,
// because chunk boundaries are wire-visible (both endpoints re-derive
// them) and feed every figure of the evaluation.
func splitReference(c *Chunker, data []byte) []Chunk {
	var chunks []Chunk
	d := c.tab.NewDigest()
	start := 0
	for start < len(data) {
		limit := start + c.cfg.MaxSize
		if limit > len(data) {
			limit = len(data)
		}
		window := data[start:limit]
		d.Reset()
		n, cut := len(window), uint64(0)
		for i := range window {
			fp := d.Roll(window[i])
			if i+1 < c.cfg.MinSize {
				continue
			}
			if fp&c.cfg.Mask == c.cfg.Magic {
				n, cut = i+1, fp
				break
			}
		}
		chunks = append(chunks, Chunk{Offset: start, Length: n, Cut: cut})
		start += n
	}
	return chunks
}

func equalChunks(a, b []Chunk) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFindCutMatchesDigestRoll(t *testing.T) {
	configs := []ChunkerConfig{
		DefaultChunkerConfig(),
		testConfig(),
		// MinSize == Window: no skip at all, the priming loop is the whole
		// window.
		{Pol: DefaultPol, Window: 16, MinSize: 16, MaxSize: 128, Mask: (1 << 5) - 1, Magic: 0x3},
		// Wide mask: cuts are rare, most chunks are forced at MaxSize.
		{Pol: DefaultPol, Window: 32, MinSize: 64, MaxSize: 1024, Mask: (1 << 20) - 1, Magic: 0x11},
	}
	rng := rand.New(rand.NewSource(77))
	for ci, cfg := range configs {
		ch, err := NewChunker(cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		for _, size := range []int{0, 1, cfg.MinSize - 1, cfg.MinSize, cfg.MinSize + 1, cfg.MaxSize, cfg.MaxSize + 1, 40000} {
			data := make([]byte, size)
			rng.Read(data)
			got := ch.Split(data)
			want := splitReference(ch, data)
			if !equalChunks(got, want) {
				t.Fatalf("config %d, size %d: bulk split %+v != reference %+v", ci, size, got, want)
			}
		}
		// Low-entropy input: long runs make mask matches cluster.
		data := make([]byte, 20000)
		for i := range data {
			data[i] = byte(i / 1000)
		}
		if got, want := ch.Split(data), splitReference(ch, data); !equalChunks(got, want) {
			t.Fatalf("config %d: bulk split diverges from reference on low-entropy input", ci)
		}
	}
}

// Property: bulk and reference splits agree on arbitrary inputs.
func TestFindCutEquivalenceProperty(t *testing.T) {
	ch, err := NewChunker(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(data []byte) bool {
		return equalChunks(ch.Split(data), splitReference(ch, data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
