package codec

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"io"

	"fractal/internal/rabin"
)

// varyMagic identifies a Vary-sized blocking wire payload.
var varyMagic = []byte("FVB1")

// Wire op tags.
const (
	varyOpRef = 0 // copy old chunk by index
	varyOpLit = 1 // literal bytes follow
)

// VaryBlock is the LBFS-style vary-sized blocking protocol [34]: files are
// divided into chunks demarcated where the Rabin fingerprint of the
// previous 48 bytes matches a specific value, so boundaries follow content
// even after insertions and deletions. The server chunks both versions,
// indexes the old chunks by SHA-1 digest, and sends each new chunk either
// as a reference to an old chunk (wherever it occurs) or as a literal. The
// client re-chunks its old copy with the identical parameters — which
// travel inside the PAD — and resolves the references.
type VaryBlock struct {
	chunker *rabin.Chunker
}

// NewVaryBlock returns the protocol with the default LBFS-like chunking
// parameters (48-byte window, ~2 KB expected chunks).
func NewVaryBlock() (*VaryBlock, error) {
	return NewVaryBlockConfig(rabin.DefaultChunkerConfig())
}

// NewVaryBlockConfig returns the protocol with explicit chunking
// parameters; both endpoints must use the same configuration.
func NewVaryBlockConfig(cfg rabin.ChunkerConfig) (*VaryBlock, error) {
	ch, err := rabin.NewChunker(cfg)
	if err != nil {
		return nil, fmt.Errorf("codec: varyblock: %w", err)
	}
	return &VaryBlock{chunker: ch}, nil
}

// Name implements Codec.
func (*VaryBlock) Name() string { return NameVaryBlock }

// ChunkerConfig returns the chunking parameters in use.
func (v *VaryBlock) ChunkerConfig() rabin.ChunkerConfig { return v.chunker.Config() }

// Cost implements Costed. The dominant server-side term reproduces the
// paper's observation that Vary-sized blocking "has huge server side
// computing time, which disqualifies it ... even if it generates the least
// transfer bytes"; see DESIGN.md ("Calibration").
func (*VaryBlock) Cost() CostModel {
	return CostModel{ServerNsPerByte: 18800, ClientNsPerByte: 2097, ServerFixed: 500 * 1000, ClientFixed: 300 * 1000}
}

// Encode implements Codec. Payload layout:
//
//	"FVB1" | uvarint len(cur) | uvarint len(old) | uvarint nops |
//	ops: tag 0 => uvarint oldChunkIndex
//	     tag 1 => uvarint litLen | litLen bytes
func (v *VaryBlock) Encode(old, cur []byte) ([]byte, error) {
	oldChunks := v.chunker.Split(old)
	index := make(map[[sha1.Size]byte]int, len(oldChunks))
	for i, c := range oldChunks {
		sum := sha1.Sum(old[c.Offset : c.Offset+c.Length])
		if _, dup := index[sum]; !dup { // keep first occurrence
			index[sum] = i
		}
	}
	newChunks := v.chunker.Split(cur)
	var ops bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	nops := 0
	for _, c := range newChunks {
		data := cur[c.Offset : c.Offset+c.Length]
		sum := sha1.Sum(data)
		if i, ok := index[sum]; ok && oldChunks[i].Length == c.Length {
			ops.WriteByte(varyOpRef)
			ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(i))])
		} else {
			ops.WriteByte(varyOpLit)
			ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(data)))])
			ops.Write(data)
		}
		nops++
	}
	out := bytes.NewBuffer(nil)
	out.Write(varyMagic)
	for _, u := range []uint64{uint64(len(cur)), uint64(len(old)), uint64(nops)} {
		out.Write(tmp[:binary.PutUvarint(tmp[:], u)])
	}
	out.Write(ops.Bytes())
	return out.Bytes(), nil
}

// Decode implements Codec.
func (v *VaryBlock) Decode(old, payload []byte) ([]byte, error) {
	r := bytes.NewReader(payload)
	magic := make([]byte, len(varyMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, varyMagic) {
		return nil, fmt.Errorf("codec: varyblock payload: bad magic")
	}
	readU := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("codec: varyblock payload: reading %s: %w", what, err)
		}
		return u, nil
	}
	curLen, err := readU("content length")
	if err != nil {
		return nil, err
	}
	if curLen > 1<<32 {
		return nil, fmt.Errorf("codec: varyblock payload: content length %d unreasonable", curLen)
	}
	oldLen, err := readU("old length")
	if err != nil {
		return nil, err
	}
	if int(oldLen) != len(old) {
		return nil, fmt.Errorf("codec: varyblock payload encoded against %d-byte old version, receiver holds %d bytes", oldLen, len(old))
	}
	nops, err := readU("op count")
	if err != nil {
		return nil, err
	}
	if nops > curLen+1 {
		return nil, fmt.Errorf("codec: varyblock payload: %d ops for %d bytes is impossible", nops, curLen)
	}
	oldChunks := v.chunker.Split(old)
	out := make([]byte, 0, curLen)
	for op := uint64(0); op < nops; op++ {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("codec: varyblock payload: truncated at op %d: %w", op, err)
		}
		switch tag {
		case varyOpRef:
			idx, err := readU("chunk index")
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(oldChunks)) {
				return nil, fmt.Errorf("codec: varyblock payload references old chunk %d of %d", idx, len(oldChunks))
			}
			c := oldChunks[idx]
			out = append(out, old[c.Offset:c.Offset+c.Length]...)
		case varyOpLit:
			n, err := readU("literal length")
			if err != nil {
				return nil, err
			}
			if n > uint64(r.Len()) {
				return nil, fmt.Errorf("codec: varyblock payload: literal of %d bytes exceeds remaining %d", n, r.Len())
			}
			lit := make([]byte, n)
			if _, err := io.ReadFull(r, lit); err != nil {
				return nil, fmt.Errorf("codec: varyblock payload: truncated literal: %w", err)
			}
			out = append(out, lit...)
		default:
			return nil, fmt.Errorf("codec: varyblock payload: unknown op tag %d", tag)
		}
	}
	if uint64(len(out)) != curLen {
		return nil, fmt.Errorf("codec: varyblock payload reconstructed %d bytes, header says %d", len(out), curLen)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("codec: varyblock payload has %d trailing bytes", r.Len())
	}
	return out, nil
}
