package codec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"fractal/internal/arena"
	"fractal/internal/rabin"
)

// varyMagic identifies a Vary-sized blocking wire payload.
var varyMagic = []byte("FVB1")

// Wire op tags.
const (
	varyOpRef = 0 // copy old chunk by index
	varyOpLit = 1 // literal bytes follow
)

// maxDecodeReserve caps the output capacity reserved up front from an
// unvalidated header length: a hostile curLen (up to the 1<<32 sanity
// bound) must not force a multi-GB allocation before a single op has been
// checked. Larger outputs grow naturally as ops prove themselves.
const maxDecodeReserve = 1 << 20

// VaryBlock is the LBFS-style vary-sized blocking protocol [34]: files are
// divided into chunks demarcated where the Rabin fingerprint of the
// previous 48 bytes matches a specific value, so boundaries follow content
// even after insertions and deletions. The server chunks both versions,
// indexes the old chunks by SHA-1 digest, and sends each new chunk either
// as a reference to an old chunk (wherever it occurs) or as a literal. The
// client re-chunks its old copy with the identical parameters — which
// travel inside the PAD — and resolves the references.
//
// VaryBlock is stateless and safe for concurrent use. Optionally a shared
// ChunkCache (UseChunkCache, set before concurrent use begins) memoizes
// the per-version chunk list + digest index, so the base version of a page
// is chunked and digested once per version instead of once per request;
// payloads are byte-identical either way.
type VaryBlock struct {
	chunker *rabin.Chunker
	conf    string      // cache-key descriptor of the chunker config
	cache   *ChunkCache // nil = stateless
}

// NewVaryBlock returns the protocol with the default LBFS-like chunking
// parameters (48-byte window, ~2 KB expected chunks).
func NewVaryBlock() (*VaryBlock, error) {
	return NewVaryBlockConfig(rabin.DefaultChunkerConfig())
}

// NewVaryBlockConfig returns the protocol with explicit chunking
// parameters; both endpoints must use the same configuration.
func NewVaryBlockConfig(cfg rabin.ChunkerConfig) (*VaryBlock, error) {
	ch, err := rabin.NewChunker(cfg)
	if err != nil {
		return nil, fmt.Errorf("codec: varyblock: %w", err)
	}
	conf := fmt.Sprintf("vary|%x|%d|%d|%d|%x|%x",
		uint64(cfg.Pol), cfg.Window, cfg.MinSize, cfg.MaxSize, cfg.Mask, cfg.Magic)
	return &VaryBlock{chunker: ch, conf: conf}, nil
}

// Name implements Codec.
func (*VaryBlock) Name() string { return NameVaryBlock }

// ChunkerConfig returns the chunking parameters in use.
func (v *VaryBlock) ChunkerConfig() rabin.ChunkerConfig { return v.chunker.Config() }

// UseChunkCache implements ChunkCacheUser. It must be called before the
// codec is used concurrently.
func (v *VaryBlock) UseChunkCache(c *ChunkCache) { v.cache = c }

// Cost implements Costed. The dominant server-side term reproduces the
// paper's observation that Vary-sized blocking "has huge server side
// computing time, which disqualifies it ... even if it generates the least
// transfer bytes"; see DESIGN.md ("Calibration"). The constants describe
// the paper's reference stateless encoder and deliberately ignore the
// chunk-index cache, so protocol selection and every simulated figure are
// unaffected by runtime cache state.
func (*VaryBlock) Cost() CostModel {
	return CostModel{ServerNsPerByte: 18800, ClientNsPerByte: 2097, ServerFixed: 500 * 1000, ClientFixed: 300 * 1000}
}

// indexOf returns the chunk index of data, through the shared cache when
// one is attached.
func (v *VaryBlock) indexOf(data []byte) *ChunkIndex {
	if v.cache == nil || len(data) == 0 {
		return buildChunkIndex(v.chunker, data)
	}
	return v.cache.getOrBuild(v.conf, data, func() *ChunkIndex {
		return buildChunkIndex(v.chunker, data)
	})
}

// Encode implements Codec. Payload layout:
//
//	"FVB1" | uvarint len(cur) | uvarint len(old) | uvarint nops |
//	ops: tag 0 => uvarint oldChunkIndex
//	     tag 1 => uvarint litLen | litLen bytes
//
//fractal:hotpath the delta-encode inner loop dominates serving cost
func (v *VaryBlock) Encode(old, cur []byte) ([]byte, error) {
	oldIdx := v.indexOf(old)
	curIdx := v.indexOf(cur)
	// The op assembly buffer comes from the unified arena: its size classes
	// replace the codec's old private pool, and the arena's retention policy
	// (oversized backings fall through to the allocator) replaces the old
	// per-pool cap.
	var ops arena.Buffer
	defer ops.Release()
	var tmp [binary.MaxVarintLen64]byte
	for i, c := range curIdx.Chunks {
		if j, ok := oldIdx.Lookup(curIdx.Sums[i]); ok && oldIdx.Chunks[j].Length == c.Length {
			ops.WriteByte(varyOpRef)
			ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(j))])
		} else {
			data := cur[c.Offset : c.Offset+c.Length]
			ops.WriteByte(varyOpLit)
			ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(data)))])
			ops.Write(data)
		}
	}
	out := make([]byte, 0, len(varyMagic)+3*binary.MaxVarintLen64+ops.Len())
	out = append(out, varyMagic...)
	for _, u := range []uint64{uint64(len(cur)), uint64(len(old)), uint64(len(curIdx.Chunks))} {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], u)]...)
	}
	out = append(out, ops.Bytes()...)
	return out, nil
}

// Decode implements Codec.
func (v *VaryBlock) Decode(old, payload []byte) ([]byte, error) {
	r := bytes.NewReader(payload)
	magic := make([]byte, len(varyMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, varyMagic) {
		return nil, fmt.Errorf("codec: varyblock payload: bad magic")
	}
	readU := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("codec: varyblock payload: reading %s: %w", what, err)
		}
		return u, nil
	}
	curLen, err := readU("content length")
	if err != nil {
		return nil, err
	}
	if curLen > 1<<32 {
		return nil, fmt.Errorf("codec: varyblock payload: content length %d unreasonable", curLen)
	}
	oldLen, err := readU("old length")
	if err != nil {
		return nil, err
	}
	if int(oldLen) != len(old) {
		return nil, fmt.Errorf("codec: varyblock payload encoded against %d-byte old version, receiver holds %d bytes", oldLen, len(old))
	}
	nops, err := readU("op count")
	if err != nil {
		return nil, err
	}
	if nops > curLen+1 {
		return nil, fmt.Errorf("codec: varyblock payload: %d ops for %d bytes is impossible", nops, curLen)
	}
	// The receiver re-chunks its old version with the same parameters; with
	// a cache attached the chunk list is reused across the session's
	// requests against the same held version.
	var oldChunks []rabin.Chunk
	if v.cache != nil && len(old) > 0 {
		oldChunks = v.indexOf(old).Chunks
	} else {
		oldChunks = v.chunker.Split(old)
	}
	reserve := curLen
	if reserve > maxDecodeReserve {
		reserve = maxDecodeReserve
	}
	out := make([]byte, 0, reserve)
	for op := uint64(0); op < nops; op++ {
		tag, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("codec: varyblock payload: truncated at op %d: %w", op, err)
		}
		switch tag {
		case varyOpRef:
			idx, err := readU("chunk index")
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(oldChunks)) {
				return nil, fmt.Errorf("codec: varyblock payload references old chunk %d of %d", idx, len(oldChunks))
			}
			c := oldChunks[idx]
			out = append(out, old[c.Offset:c.Offset+c.Length]...)
		case varyOpLit:
			n, err := readU("literal length")
			if err != nil {
				return nil, err
			}
			if n > uint64(r.Len()) {
				return nil, fmt.Errorf("codec: varyblock payload: literal of %d bytes exceeds remaining %d", n, r.Len())
			}
			// Read the literal straight into the output's free space — no
			// per-op staging slice.
			off := len(out)
			out = slices.Grow(out, int(n))[:off+int(n)]
			if _, err := io.ReadFull(r, out[off:]); err != nil {
				return nil, fmt.Errorf("codec: varyblock payload: truncated literal: %w", err)
			}
		default:
			return nil, fmt.Errorf("codec: varyblock payload: unknown op tag %d", tag)
		}
	}
	if uint64(len(out)) != curLen {
		return nil, fmt.Errorf("codec: varyblock payload reconstructed %d bytes, header says %d", len(out), curLen)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("codec: varyblock payload has %d trailing bytes", r.Len())
	}
	return out, nil
}
