package codec

import (
	"crypto/sha1"
	"runtime"
	"sync"
	"sync/atomic"

	"fractal/internal/rabin"
)

// parallelDigestThreshold is the input size below which region digesting
// stays serial: goroutine fan-out costs more than it saves on small
// buffers, and the paper's ~32 KB images sit right at the boundary.
const parallelDigestThreshold = 128 << 10

// maxDigestWorkers bounds the digest pool regardless of GOMAXPROCS so a
// single large encode cannot monopolize a big server.
const maxDigestWorkers = 8

// sha1Chunks computes the SHA-1 of every chunk of data. Above
// parallelDigestThreshold the chunks are fanned across a bounded worker
// pool; each worker claims indices from an atomic counter and writes into
// its own slot of the result slice, so the output order is the chunk order
// regardless of scheduling — the determinism the cache and the wire format
// both rely on.
func sha1Chunks(data []byte, chunks []rabin.Chunk) [][sha1.Size]byte {
	sums := make([][sha1.Size]byte, len(chunks))
	workers := digestWorkers(len(data), len(chunks))
	if workers < 2 {
		for i, c := range chunks {
			sums[i] = sha1.Sum(data[c.Offset : c.Offset+c.Length])
		}
		return sums
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(chunks) {
					return
				}
				c := chunks[i]
				sums[i] = sha1.Sum(data[c.Offset : c.Offset+c.Length])
			}
		}()
	}
	wg.Wait()
	return sums
}

// sha1Blocks computes the SHA-1 of every blockSize-aligned block of data
// (the Bitmap protocol's client-side digest vector), in parallel above the
// threshold with the same deterministic indexed-result scheme as
// sha1Chunks.
func sha1Blocks(data []byte, blockSize int) [][sha1.Size]byte {
	n := (len(data) + blockSize - 1) / blockSize
	sums := make([][sha1.Size]byte, n)
	block := func(i int) []byte {
		start := i * blockSize
		end := start + blockSize
		if end > len(data) {
			end = len(data)
		}
		return data[start:end]
	}
	workers := digestWorkers(len(data), n)
	if workers < 2 {
		for i := 0; i < n; i++ {
			sums[i] = sha1.Sum(block(i))
		}
		return sums
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				sums[i] = sha1.Sum(block(i))
			}
		}()
	}
	wg.Wait()
	return sums
}

// digestWorkers sizes the pool: 1 means stay serial.
func digestWorkers(totalBytes, regions int) int {
	if totalBytes < parallelDigestThreshold || regions < 2 {
		return 1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > maxDigestWorkers {
		workers = maxDigestWorkers
	}
	if workers > regions {
		workers = regions
	}
	return workers
}
