package codec

// Direct is the null protocol: content travels unmodified. Strictly
// speaking there is no optimization, but the client still negotiates with
// the adaptation proxy first (Section 4.1), so Direct is a real PAD with
// zero computing overhead.
type Direct struct{}

// NewDirect returns the Direct sending protocol.
func NewDirect() *Direct { return &Direct{} }

// Name implements Codec.
func (*Direct) Name() string { return NameDirect }

// Cost implements Costed: Direct performs no computation on either side.
func (*Direct) Cost() CostModel { return CostModel{} }

// Encode implements Codec: the payload is a copy of the current content.
func (*Direct) Encode(old, cur []byte) ([]byte, error) {
	return append([]byte(nil), cur...), nil
}

// Decode implements Codec.
func (*Direct) Decode(old, payload []byte) ([]byte, error) {
	return append([]byte(nil), payload...), nil
}
