package codec

import (
	"bufio"
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"fractal/internal/arena"
)

// DefaultBlockSize is the fixed block granularity of the Bitmap protocol.
const DefaultBlockSize = 512

// bitmapMagic identifies a Bitmap wire payload.
var bitmapMagic = []byte("FBM1")

// Bitmap is the fixed-size blocking protocol from [29]: both versions are
// divided into BlockSize-byte blocks; the server sends a bitmap of which
// block positions changed plus the literal data of changed blocks, and the
// client rebuilds the new version from its old copy plus the literals. In
// the full exchange the client first uploads per-block digests
// (UpstreamBytes); the simulation charges that traffic, while Encode — run
// where the server already stores the old version — compares blocks
// directly.
//
// Bitmap is stateless and safe for concurrent use. With a shared
// ChunkCache attached (UseChunkCache, set before concurrent use begins)
// Encode compares the cached per-version digest vectors instead of the raw
// bytes — the comparison the real digest exchange performs — so each
// version is digested once and subsequent requests touch 20 bytes per
// block instead of the full content. Payloads are byte-identical either
// way.
type Bitmap struct {
	blockSize int
	conf      string      // cache-key descriptor of the block size
	cache     *ChunkCache // nil = stateless
}

// NewBitmap returns a Bitmap protocol with the given block size.
func NewBitmap(blockSize int) (*Bitmap, error) {
	if blockSize < 16 || blockSize > 1<<20 {
		return nil, fmt.Errorf("codec: bitmap block size %d out of range [16, 1MiB]", blockSize)
	}
	return &Bitmap{blockSize: blockSize, conf: fmt.Sprintf("bitmap|%d", blockSize)}, nil
}

// UseChunkCache implements ChunkCacheUser. It must be called before the
// codec is used concurrently.
func (b *Bitmap) UseChunkCache(c *ChunkCache) { b.cache = c }

// BlockDigests returns the SHA-1 of every block of data — the per-block
// vector the client uploads in the full exchange. Digests are computed
// with the bounded parallel pool above its threshold and served from the
// shared cache when one is attached.
func (b *Bitmap) BlockDigests(data []byte) [][sha1.Size]byte {
	if b.cache == nil || len(data) == 0 {
		return sha1Blocks(data, b.blockSize)
	}
	return b.cache.getOrBuild(b.conf, data, func() *ChunkIndex {
		return buildBlockIndex(b.blockSize, data)
	}).Sums
}

// Name implements Codec.
func (*Bitmap) Name() string { return NameBitmap }

// BlockSize returns the configured block granularity.
func (b *Bitmap) BlockSize() int { return b.blockSize }

// Cost implements Costed; see DESIGN.md ("Calibration"). The client-side
// term is large: the client digests its entire old version block by block
// and rebuilds the new version, expensive on weak devices.
func (*Bitmap) Cost() CostModel {
	return CostModel{ServerNsPerByte: 398, ClientNsPerByte: 1663, ServerFixed: 300 * 1000, ClientFixed: 300 * 1000}
}

// UpstreamBytes implements UpstreamCoster: the client sends one SHA-1
// digest per block of its old version.
func (b *Bitmap) UpstreamBytes(old []byte) int64 {
	blocks := (len(old) + b.blockSize - 1) / b.blockSize
	return int64(blocks) * sha1.Size
}

// Encode implements Codec. Payload layout:
//
//	"FBM1" | uvarint blockSize | uvarint len(cur) | uvarint len(old) |
//	bitmap (ceil(nblocks/8) bytes, bit i set => block i is a literal) |
//	literal block data in block order
func (b *Bitmap) Encode(old, cur []byte) ([]byte, error) {
	bs := b.blockSize
	nblocks := (len(cur) + bs - 1) / bs
	bitmap := make([]byte, (nblocks+7)/8)
	// With a cache attached, compare the memoized digest vectors (the real
	// exchange's comparison): each version is digested once, then every
	// request against it reads 20 bytes per block. Stateless encodes
	// compare raw bytes — cheaper than hashing both sides once.
	var oldSums, curSums [][sha1.Size]byte
	if b.cache != nil && len(old) > 0 {
		oldSums, curSums = b.BlockDigests(old), b.BlockDigests(cur)
	}
	// Literal staging comes from the unified arena (see VaryBlock.Encode).
	var lits arena.Buffer
	defer lits.Release()
	for i := 0; i < nblocks; i++ {
		start := i * bs
		end := start + bs
		if end > len(cur) {
			end = len(cur)
		}
		curBlk := cur[start:end]
		same := false
		if start < len(old) {
			oend := start + bs
			if oend > len(old) {
				oend = len(old)
			}
			if oldSums != nil {
				same = oend-start == len(curBlk) && oldSums[i] == curSums[i]
			} else {
				same = bytes.Equal(curBlk, old[start:oend])
			}
		}
		if !same {
			bitmap[i/8] |= 1 << (i % 8)
			lits.Write(curBlk)
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(bitmapMagic)+3*binary.MaxVarintLen64+len(bitmap)+lits.Len())
	out = append(out, bitmapMagic...)
	for _, v := range []uint64{uint64(bs), uint64(len(cur)), uint64(len(old))} {
		out = append(out, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	out = append(out, bitmap...)
	out = append(out, lits.Bytes()...)
	return out, nil
}

// Decode implements Codec.
func (b *Bitmap) Decode(old, payload []byte) ([]byte, error) {
	return b.DecodeFrom(old, bytes.NewReader(payload))
}

// DecodeFrom decodes a Bitmap payload from a stream. The reader may
// deliver arbitrarily short reads (chunked transports routinely do);
// every framed field is read with io.ReadFull so a short read is a
// truncation error, never silently-misparsed framing.
func (b *Bitmap) DecodeFrom(old []byte, src io.Reader) ([]byte, error) {
	r := bufio.NewReader(src)
	magic := make([]byte, len(bitmapMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, bitmapMagic) {
		return nil, fmt.Errorf("codec: bitmap payload: bad magic")
	}
	readU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("codec: bitmap payload: reading %s: %w", what, err)
		}
		return v, nil
	}
	bsU, err := readU("block size")
	if err != nil {
		return nil, err
	}
	curLenU, err := readU("content length")
	if err != nil {
		return nil, err
	}
	oldLenU, err := readU("old length")
	if err != nil {
		return nil, err
	}
	bs := int(bsU)
	if bs < 16 || bs > 1<<20 {
		return nil, fmt.Errorf("codec: bitmap payload: block size %d out of range", bs)
	}
	if curLenU > 1<<32 {
		return nil, fmt.Errorf("codec: bitmap payload: content length %d unreasonable", curLenU)
	}
	curLen := int(curLenU)
	if int(oldLenU) != len(old) {
		return nil, fmt.Errorf("codec: bitmap payload encoded against %d-byte old version, receiver holds %d bytes", oldLenU, len(old))
	}
	nblocks := (curLen + bs - 1) / bs
	// The bitmap's size is derived from the (hostile) header length, so it
	// is read incrementally in clamped steps rather than allocated up
	// front: a header claiming 4 GB of content yields a ~32 MB bitmap
	// length, but the allocation only grows as bytes actually arrive.
	bmLen := (nblocks + 7) / 8
	bmReserve := bmLen
	if bmReserve > maxDecodeReserve {
		bmReserve = maxDecodeReserve
	}
	bitmap := make([]byte, 0, bmReserve)
	for len(bitmap) < bmLen {
		step := bmLen - len(bitmap)
		if step > maxDecodeReserve {
			step = maxDecodeReserve
		}
		off := len(bitmap)
		bitmap = slices.Grow(bitmap, step)[:off+step]
		if _, err := io.ReadFull(r, bitmap[off:]); err != nil {
			return nil, fmt.Errorf("codec: bitmap payload: truncated bitmap: %w", err)
		}
	}
	reserve := curLen
	if reserve > maxDecodeReserve {
		// An unvalidated header length must not force a huge allocation;
		// the output grows naturally as blocks are actually produced.
		reserve = maxDecodeReserve
	}
	out := make([]byte, 0, reserve)
	for i := 0; i < nblocks; i++ {
		start := i * bs
		end := start + bs
		if end > curLen {
			end = curLen
		}
		blkLen := end - start
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			// Read the literal straight into the output's free space — no
			// per-block staging slice.
			off := len(out)
			out = slices.Grow(out, blkLen)[:off+blkLen]
			if _, err := io.ReadFull(r, out[off:]); err != nil {
				return nil, fmt.Errorf("codec: bitmap payload: truncated literal block %d: %w", i, err)
			}
			continue
		}
		if start+blkLen > len(old) {
			return nil, fmt.Errorf("codec: bitmap payload references old block %d beyond old length %d", i, len(old))
		}
		out = append(out, old[start:start+blkLen]...)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("codec: bitmap payload has trailing bytes")
	}
	return out, nil
}
