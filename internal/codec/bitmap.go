package codec

import (
	"bufio"
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"io"
)

// DefaultBlockSize is the fixed block granularity of the Bitmap protocol.
const DefaultBlockSize = 512

// bitmapMagic identifies a Bitmap wire payload.
var bitmapMagic = []byte("FBM1")

// Bitmap is the fixed-size blocking protocol from [29]: both versions are
// divided into BlockSize-byte blocks; the server sends a bitmap of which
// block positions changed plus the literal data of changed blocks, and the
// client rebuilds the new version from its old copy plus the literals. In
// the full exchange the client first uploads per-block digests
// (UpstreamBytes); the simulation charges that traffic, while Encode — run
// where the server already stores the old version — compares blocks
// directly.
type Bitmap struct {
	blockSize int
}

// NewBitmap returns a Bitmap protocol with the given block size.
func NewBitmap(blockSize int) (*Bitmap, error) {
	if blockSize < 16 || blockSize > 1<<20 {
		return nil, fmt.Errorf("codec: bitmap block size %d out of range [16, 1MiB]", blockSize)
	}
	return &Bitmap{blockSize: blockSize}, nil
}

// Name implements Codec.
func (*Bitmap) Name() string { return NameBitmap }

// BlockSize returns the configured block granularity.
func (b *Bitmap) BlockSize() int { return b.blockSize }

// Cost implements Costed; see DESIGN.md ("Calibration"). The client-side
// term is large: the client digests its entire old version block by block
// and rebuilds the new version, expensive on weak devices.
func (*Bitmap) Cost() CostModel {
	return CostModel{ServerNsPerByte: 398, ClientNsPerByte: 1663, ServerFixed: 300 * 1000, ClientFixed: 300 * 1000}
}

// UpstreamBytes implements UpstreamCoster: the client sends one SHA-1
// digest per block of its old version.
func (b *Bitmap) UpstreamBytes(old []byte) int64 {
	blocks := (len(old) + b.blockSize - 1) / b.blockSize
	return int64(blocks) * sha1.Size
}

// Encode implements Codec. Payload layout:
//
//	"FBM1" | uvarint blockSize | uvarint len(cur) | uvarint len(old) |
//	bitmap (ceil(nblocks/8) bytes, bit i set => block i is a literal) |
//	literal block data in block order
func (b *Bitmap) Encode(old, cur []byte) ([]byte, error) {
	bs := b.blockSize
	nblocks := (len(cur) + bs - 1) / bs
	bitmap := make([]byte, (nblocks+7)/8)
	var lits bytes.Buffer
	for i := 0; i < nblocks; i++ {
		start := i * bs
		end := start + bs
		if end > len(cur) {
			end = len(cur)
		}
		curBlk := cur[start:end]
		same := false
		if start < len(old) {
			oend := start + bs
			if oend > len(old) {
				oend = len(old)
			}
			same = bytes.Equal(curBlk, old[start:oend])
		}
		if !same {
			bitmap[i/8] |= 1 << (i % 8)
			lits.Write(curBlk)
		}
	}
	out := bytes.NewBuffer(nil)
	out.Write(bitmapMagic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range []uint64{uint64(bs), uint64(len(cur)), uint64(len(old))} {
		out.Write(tmp[:binary.PutUvarint(tmp[:], v)])
	}
	out.Write(bitmap)
	out.Write(lits.Bytes())
	return out.Bytes(), nil
}

// Decode implements Codec.
func (b *Bitmap) Decode(old, payload []byte) ([]byte, error) {
	return b.DecodeFrom(old, bytes.NewReader(payload))
}

// DecodeFrom decodes a Bitmap payload from a stream. The reader may
// deliver arbitrarily short reads (chunked transports routinely do);
// every framed field is read with io.ReadFull so a short read is a
// truncation error, never silently-misparsed framing.
func (b *Bitmap) DecodeFrom(old []byte, src io.Reader) ([]byte, error) {
	r := bufio.NewReader(src)
	magic := make([]byte, len(bitmapMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, bitmapMagic) {
		return nil, fmt.Errorf("codec: bitmap payload: bad magic")
	}
	readU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			return 0, fmt.Errorf("codec: bitmap payload: reading %s: %w", what, err)
		}
		return v, nil
	}
	bsU, err := readU("block size")
	if err != nil {
		return nil, err
	}
	curLenU, err := readU("content length")
	if err != nil {
		return nil, err
	}
	oldLenU, err := readU("old length")
	if err != nil {
		return nil, err
	}
	bs := int(bsU)
	if bs < 16 || bs > 1<<20 {
		return nil, fmt.Errorf("codec: bitmap payload: block size %d out of range", bs)
	}
	if curLenU > 1<<32 {
		return nil, fmt.Errorf("codec: bitmap payload: content length %d unreasonable", curLenU)
	}
	curLen := int(curLenU)
	if int(oldLenU) != len(old) {
		return nil, fmt.Errorf("codec: bitmap payload encoded against %d-byte old version, receiver holds %d bytes", oldLenU, len(old))
	}
	nblocks := (curLen + bs - 1) / bs
	bitmap := make([]byte, (nblocks+7)/8)
	if _, err := io.ReadFull(r, bitmap); err != nil {
		return nil, fmt.Errorf("codec: bitmap payload: truncated bitmap: %w", err)
	}
	out := make([]byte, 0, curLen)
	for i := 0; i < nblocks; i++ {
		start := i * bs
		end := start + bs
		if end > curLen {
			end = curLen
		}
		blkLen := end - start
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			lit := make([]byte, blkLen)
			if _, err := io.ReadFull(r, lit); err != nil {
				return nil, fmt.Errorf("codec: bitmap payload: truncated literal block %d: %w", i, err)
			}
			out = append(out, lit...)
			continue
		}
		if start+blkLen > len(old) {
			return nil, fmt.Errorf("codec: bitmap payload references old block %d beyond old length %d", i, len(old))
		}
		out = append(out, old[start:start+blkLen]...)
	}
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("codec: bitmap payload has trailing bytes")
	}
	return out, nil
}
