package codec

import (
	"encoding/binary"
	"runtime"
	"strings"
	"testing"
)

// These tests pin the hostile-header allocation behaviour the wiretaint
// analyzer enforces statically: a payload whose header claims gigabytes
// of content but delivers nothing must fail fast without the decoder
// reserving anything close to the claimed size. The bounds are loose
// (megabytes of headroom over the ~1 MB clamp) so runtime allocation
// noise cannot flake them — the regression they catch is the original
// make([]byte, 0, curLen) which allocated 2-4 GB up front.

// allocDelta reports bytes allocated while running f on a quiesced heap.
func allocDelta(t *testing.T, f func()) uint64 {
	t.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// appendUvarints appends each value in uvarint encoding.
func appendUvarints(dst []byte, vs ...uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range vs {
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
	}
	return dst
}

func TestRsyncHostileLengthNoHugeAllocation(t *testing.T) {
	r, err := NewRsync(64)
	if err != nil {
		t.Fatal(err)
	}
	// Header: block size 64, 2 GB of claimed content, empty old version,
	// one op — then the stream ends.
	payload := appendUvarints(append([]byte(nil), rsyncMagic...), 64, 1<<31, 0, 1)
	delta := allocDelta(t, func() {
		if _, err := r.Decode(nil, payload); err == nil {
			t.Error("truncated 2 GB-claiming payload decoded without error")
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("unexpected decode error: %v", err)
		}
	})
	if delta > 16<<20 {
		t.Fatalf("decoding a truncated 2 GB-claiming rsync payload allocated %d bytes", delta)
	}
}

func TestBitmapHostileLengthNoHugeAllocation(t *testing.T) {
	b, err := NewBitmap(16)
	if err != nil {
		t.Fatal(err)
	}
	// Header: block size 16 and 4 GB of claimed content, which implies a
	// 32 MB bitmap — none of which arrives.
	payload := appendUvarints(append([]byte(nil), bitmapMagic...), 16, 1<<32, 0)
	delta := allocDelta(t, func() {
		if _, err := b.Decode(nil, payload); err == nil {
			t.Error("truncated 4 GB-claiming payload decoded without error")
		} else if !strings.Contains(err.Error(), "truncated bitmap") {
			t.Errorf("unexpected decode error: %v", err)
		}
	})
	if delta > 8<<20 {
		t.Fatalf("decoding a truncated 4 GB-claiming bitmap payload allocated %d bytes", delta)
	}
}

func TestVaryBlockHostileLengthNoHugeAllocation(t *testing.T) {
	v, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	// Header: 2 GB of claimed content, empty old version, one op — then
	// the stream ends.
	payload := appendUvarints(append([]byte(nil), varyMagic...), 1<<31, 0, 1)
	delta := allocDelta(t, func() {
		if _, err := v.Decode(nil, payload); err == nil {
			t.Error("truncated 2 GB-claiming payload decoded without error")
		} else if !strings.Contains(err.Error(), "truncated") {
			t.Errorf("unexpected decode error: %v", err)
		}
	})
	if delta > 16<<20 {
		t.Fatalf("decoding a truncated 2 GB-claiming varyblock payload allocated %d bytes", delta)
	}
}
