package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"fractal/internal/workload"
)

// allCodecs returns one instance of each case-study protocol.
func allCodecs(t testing.TB) []Costed {
	t.Helper()
	var out []Costed
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out = append(out, c)
	}
	return out
}

func TestRegistryHasCaseStudyProtocols(t *testing.T) {
	names := Names()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{NameBitmap, NameDirect, NameGzip, NameVaryBlock, NameRsync} {
		if !have[want] {
			t.Errorf("registry %v missing %q", names, want)
		}
	}
	if _, err := New("morse-code"); err == nil {
		t.Fatal("unknown protocol constructed")
	}
}

func TestRegisterRejectsDuplicate(t *testing.T) {
	if err := Register(NameDirect, func() (Costed, error) { return NewDirect(), nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := Register("test-unique-proto", func() (Costed, error) { return NewDirect(), nil }); err != nil {
		t.Fatalf("fresh registration failed: %v", err)
	}
}

// versionedPair builds an (old, new) content pair from the standard
// workload generator.
func versionedPair(t testing.TB, seed int64) (old, cur []byte) {
	t.Helper()
	c, err := workload.Generate(workload.Config{
		Pages: 1, TextBytes: 5 * 1024, Images: 4, ImageBytes: 32 * 1024, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.Mutate(c.Pages[0], workload.DefaultMutation(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	return c.Pages[0].Bytes(), v2.Bytes()
}

func TestRoundTripWithOldVersion(t *testing.T) {
	old, cur := versionedPair(t, 11)
	for _, c := range allCodecs(t) {
		payload, err := c.Encode(old, cur)
		if err != nil {
			t.Fatalf("%s: Encode: %v", c.Name(), err)
		}
		got, err := c.Decode(old, payload)
		if err != nil {
			t.Fatalf("%s: Decode: %v", c.Name(), err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: round trip mismatch: got %d bytes, want %d", c.Name(), len(got), len(cur))
		}
	}
}

func TestRoundTripColdStart(t *testing.T) {
	_, cur := versionedPair(t, 12)
	for _, c := range allCodecs(t) {
		payload, err := c.Encode(nil, cur)
		if err != nil {
			t.Fatalf("%s: Encode(nil, cur): %v", c.Name(), err)
		}
		got, err := c.Decode(nil, payload)
		if err != nil {
			t.Fatalf("%s: Decode(nil): %v", c.Name(), err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: cold-start round trip mismatch", c.Name())
		}
	}
}

func TestRoundTripEmptyContent(t *testing.T) {
	for _, c := range allCodecs(t) {
		payload, err := c.Encode(nil, nil)
		if err != nil {
			t.Fatalf("%s: Encode(nil, nil): %v", c.Name(), err)
		}
		got, err := c.Decode(nil, payload)
		if err != nil {
			t.Fatalf("%s: Decode empty: %v", c.Name(), err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: decoded %d bytes from empty content", c.Name(), len(got))
		}
	}
}

func TestRoundTripIdenticalVersions(t *testing.T) {
	old, _ := versionedPair(t, 13)
	for _, c := range allCodecs(t) {
		payload, err := c.Encode(old, old)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := c.Decode(old, payload)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, old) {
			t.Fatalf("%s: identical-version round trip mismatch", c.Name())
		}
		// Differencing protocols should send almost nothing.
		if c.Name() == NameBitmap || c.Name() == NameVaryBlock {
			if len(payload) > len(old)/20 {
				t.Fatalf("%s: identical versions still cost %d bytes (content %d)", c.Name(), len(payload), len(old))
			}
		}
	}
}

func TestRoundTripShrinkingAndGrowingContent(t *testing.T) {
	old, _ := versionedPair(t, 14)
	shorter := old[:len(old)/3]
	longer := append(append([]byte(nil), old...), old[:5000]...)
	for _, c := range allCodecs(t) {
		for _, cur := range [][]byte{shorter, longer} {
			payload, err := c.Encode(old, cur)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			got, err := c.Decode(old, payload)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if !bytes.Equal(got, cur) {
				t.Fatalf("%s: resize round trip mismatch (%d -> %d bytes)", c.Name(), len(old), len(cur))
			}
		}
	}
}

// The paper's Figure 11(a): Direct transfers the most bytes, Vary-sized
// blocking the least, Gzip and Bitmap in the middle. This is the byte-count
// shape the whole case study rests on.
func TestBytesTransferredOrdering(t *testing.T) {
	old, cur := versionedPair(t, 15)
	sizes := map[string]int64{}
	for _, c := range allCodecs(t) {
		payload, err := c.Encode(old, cur)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		total := int64(len(payload))
		if uc, ok := Codec(c).(UpstreamCoster); ok {
			total += uc.UpstreamBytes(old)
		}
		sizes[c.Name()] = total
	}
	t.Logf("bytes transferred: direct=%d gzip=%d bitmap=%d vary=%d",
		sizes[NameDirect], sizes[NameGzip], sizes[NameBitmap], sizes[NameVaryBlock])
	if !(sizes[NameDirect] > sizes[NameGzip]) {
		t.Errorf("direct (%d) should exceed gzip (%d)", sizes[NameDirect], sizes[NameGzip])
	}
	if !(sizes[NameGzip] > sizes[NameBitmap]) {
		t.Errorf("gzip (%d) should exceed bitmap (%d)", sizes[NameGzip], sizes[NameBitmap])
	}
	if !(sizes[NameBitmap] > sizes[NameVaryBlock]) {
		t.Errorf("bitmap (%d) should exceed varyblock (%d)", sizes[NameBitmap], sizes[NameVaryBlock])
	}
}

func TestBitmapUpstreamBytes(t *testing.T) {
	b, err := NewBitmap(512)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.UpstreamBytes(make([]byte, 1024)); got != 2*20 {
		t.Fatalf("upstream for 2 blocks = %d, want 40", got)
	}
	if got := b.UpstreamBytes(make([]byte, 1025)); got != 3*20 {
		t.Fatalf("upstream for 2.x blocks = %d, want 60", got)
	}
	if got := b.UpstreamBytes(nil); got != 0 {
		t.Fatalf("upstream for nil old = %d, want 0", got)
	}
}

func TestNewBitmapValidation(t *testing.T) {
	if _, err := NewBitmap(8); err == nil {
		t.Fatal("tiny block size accepted")
	}
	if _, err := NewBitmap(2 << 20); err == nil {
		t.Fatal("huge block size accepted")
	}
	b, err := NewBitmap(256)
	if err != nil {
		t.Fatal(err)
	}
	if b.BlockSize() != 256 {
		t.Fatalf("BlockSize = %d, want 256", b.BlockSize())
	}
}

func TestNewGzipLevelValidation(t *testing.T) {
	if _, err := NewGzipLevel(42); err == nil {
		t.Fatal("invalid gzip level accepted")
	}
	g, err := NewGzipLevel(9)
	if err != nil {
		t.Fatal(err)
	}
	_, cur := versionedPair(t, 16)
	p9, err := g.Encode(nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := NewGzipLevel(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := g1.Encode(nil, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(p9) > len(p1) {
		t.Fatalf("level 9 (%d bytes) larger than level 1 (%d bytes)", len(p9), len(p1))
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	old, cur := versionedPair(t, 17)
	for _, c := range allCodecs(t) {
		if c.Name() == NameDirect {
			continue // the null protocol has no framing to violate
		}
		payload, err := c.Encode(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		// Truncation.
		if _, err := c.Decode(old, payload[:len(payload)/2]); err == nil {
			t.Errorf("%s: truncated payload decoded without error", c.Name())
		}
		// Garbage.
		if _, err := c.Decode(old, []byte("not a payload at all")); err == nil {
			t.Errorf("%s: garbage payload decoded without error", c.Name())
		}
		// Empty payload.
		if _, err := c.Decode(old, nil); err == nil {
			t.Errorf("%s: empty payload decoded without error", c.Name())
		}
	}
}

func TestDiffDecodersRejectWrongOldVersion(t *testing.T) {
	old, cur := versionedPair(t, 18)
	wrongOld := old[:len(old)-100]
	for _, name := range []string{NameBitmap, NameVaryBlock} {
		c, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := c.Encode(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Decode(wrongOld, payload); err == nil {
			t.Errorf("%s: decode against wrong old version succeeded", name)
		}
	}
}

func TestVaryBlockCrossOffsetDedup(t *testing.T) {
	// Content moved to a different offset must still be found by
	// varyblock but not by bitmap: prepend a slab to shift everything.
	rng := rand.New(rand.NewSource(19))
	old := make([]byte, 64*1024)
	rng.Read(old)
	shift := make([]byte, 4096)
	rng.Read(shift)
	cur := append(append([]byte(nil), shift...), old...)

	vb, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	vp, err := vb.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBitmap(DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := bm.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(vp)) > int64(len(cur))/4 {
		t.Fatalf("varyblock sent %d of %d bytes after a shift; dedup failed", len(vp), len(cur))
	}
	if int64(len(bp)) < int64(len(cur))*3/4 {
		t.Fatalf("bitmap sent only %d of %d bytes after a shift; fixed-offset model violated", len(bp), len(cur))
	}
	got, err := vb.Decode(old, vp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("varyblock shift round trip mismatch")
	}
}

func TestCostModelScaling(t *testing.T) {
	m := CostModel{ServerNsPerByte: 100, ClientNsPerByte: 50}
	if got := m.ServerTime(1000); got.Nanoseconds() != 100000 {
		t.Fatalf("server time = %v, want 100µs", got)
	}
	if got := m.ClientTime(1000); got.Nanoseconds() != 50000 {
		t.Fatalf("client time = %v, want 50µs", got)
	}
	if got := m.ServerTime(-5); got != 0 {
		t.Fatalf("negative byte count produced %v", got)
	}
}

func TestCostModelOrderingMatchesPaper(t *testing.T) {
	// Figure 10: vary-sized blocking has by far the largest server-side
	// computing; direct has none.
	costs := map[string]CostModel{}
	for _, c := range allCodecs(t) {
		costs[c.Name()] = c.Cost()
	}
	const page = 138 * 1024
	vary := costs[NameVaryBlock].ServerTime(page)
	gz := costs[NameGzip].ServerTime(page)
	bm := costs[NameBitmap].ServerTime(page)
	direct := costs[NameDirect].ServerTime(page)
	if !(vary > 10*gz && vary > 10*bm) {
		t.Errorf("vary server cost %v not dominant over gzip %v / bitmap %v", vary, gz, bm)
	}
	if direct != 0 {
		t.Errorf("direct server cost = %v, want 0", direct)
	}
}

// Property: all four protocols round-trip arbitrary (old, cur) pairs.
func TestRoundTripProperty(t *testing.T) {
	codecs := allCodecs(t)
	f := func(old, cur []byte) bool {
		for _, c := range codecs {
			payload, err := c.Encode(old, cur)
			if err != nil {
				return false
			}
			got, err := c.Decode(old, payload)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, cur) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics (errors are fine).
func TestDecodeGarbageNeverPanicsProperty(t *testing.T) {
	codecs := allCodecs(t)
	f := func(old, junk []byte) bool {
		for _, c := range codecs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: Decode panicked on garbage: %v", c.Name(), r)
					}
				}()
				_, _ = c.Decode(old, junk)
			}()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	old, cur := versionedPair(b, 20)
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(cur)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(old, cur); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	old, cur := versionedPair(b, 21)
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			b.Fatal(err)
		}
		payload, err := c.Encode(old, cur)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(cur)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decode(old, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
