package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeakSumRolling(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 500)
	rng.Read(data)
	const n = 64
	sum := weakSum(data[:n])
	for i := 1; i+n <= len(data); i++ {
		sum = roll(sum, data[i-1], data[i+n-1], n)
		if want := weakSum(data[i : i+n]); sum != want {
			t.Fatalf("rolled sum at %d = %#x, direct = %#x", i, sum, want)
		}
	}
}

func TestRsyncRoundTrip(t *testing.T) {
	r, err := NewRsync(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	old := make([]byte, 10000)
	rng.Read(old)
	// New version: a shift (insertion at front) plus a tail edit — the
	// case Bitmap cannot handle but rsync must.
	cur := append([]byte("INSERTED PREFIX"), old...)
	cur[len(cur)-1] ^= 0xFF
	payload, err := r.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Decode(old, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("round trip mismatch")
	}
	if len(payload) > len(cur)/4 {
		t.Fatalf("rsync sent %d of %d bytes after a shift; sliding match failed", len(payload), len(cur))
	}
}

func TestRsyncColdAndEmpty(t *testing.T) {
	r, err := NewRsync(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, cur := range [][]byte{nil, []byte("short"), bytes.Repeat([]byte("ab"), 1000)} {
		payload, err := r.Encode(nil, cur)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Decode(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("cold round trip mismatch for %d bytes", len(cur))
		}
	}
}

func TestRsyncIdenticalVersionsNearlyFree(t *testing.T) {
	r, err := NewRsync(512)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	data := make([]byte, 64*1024)
	rng.Read(data)
	payload, err := r.Encode(data, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > len(data)/20 {
		t.Fatalf("identical versions cost %d bytes", len(payload))
	}
	got, err := r.Decode(data, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("identity round trip mismatch")
	}
}

func TestRsyncValidation(t *testing.T) {
	if _, err := NewRsync(4); err == nil {
		t.Fatal("tiny block accepted")
	}
	if _, err := NewRsync(2 << 20); err == nil {
		t.Fatal("huge block accepted")
	}
	r, err := NewRsync(512)
	if err != nil {
		t.Fatal(err)
	}
	if r.BlockSize() != 512 {
		t.Fatalf("block size = %d", r.BlockSize())
	}
	if got := r.UpstreamBytes(make([]byte, 1024)); got != 2*24 {
		t.Fatalf("upstream = %d, want 48", got)
	}
	if got := r.UpstreamBytes(make([]byte, 1000)); got != 24 {
		t.Fatalf("upstream for partial block = %d, want 24 (full blocks only)", got)
	}
}

func TestRsyncDecodeRejectsCorrupt(t *testing.T) {
	r, err := NewRsync(64)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("x"), 640)
	cur := bytes.Repeat([]byte("y"), 640)
	payload, err := r.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Decode(old, payload[:len(payload)/2]); err == nil {
		t.Error("truncated payload decoded")
	}
	if _, err := r.Decode(old[:100], payload); err == nil {
		t.Error("wrong old version accepted")
	}
	if _, err := r.Decode(old, []byte("junk")); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := r.Decode(old, append(payload, 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// Property: rsync round-trips arbitrary old/new pairs.
func TestRsyncRoundTripProperty(t *testing.T) {
	r, err := NewRsync(32)
	if err != nil {
		t.Fatal(err)
	}
	f := func(old, cur []byte) bool {
		payload, err := r.Encode(old, cur)
		if err != nil {
			return false
		}
		got, err := r.Decode(old, payload)
		return err == nil && bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: a weak-checksum collision with a different strong hash must
// not produce a false block match (inject colliding windows).
func TestRsyncWeakCollisionSafety(t *testing.T) {
	r, err := NewRsync(16)
	if err != nil {
		t.Fatal(err)
	}
	// Two different 16-byte blocks with equal weak sums: swap two adjacent
	// equal-sum pairs. weakSum is permutation-sensitive via b, so craft via
	// brute force.
	rng := rand.New(rand.NewSource(34))
	base := make([]byte, 16)
	rng.Read(base)
	var collide []byte
	for tries := 0; tries < 200000; tries++ {
		cand := make([]byte, 16)
		rng.Read(cand)
		if weakSum(cand) == weakSum(base) && !bytes.Equal(cand, base) {
			collide = cand
			break
		}
	}
	if collide == nil {
		t.Skip("no collision found in budget (probabilistic)")
	}
	old := append([]byte(nil), base...)
	cur := append([]byte(nil), collide...)
	payload, err := r.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Decode(old, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("weak-checksum collision corrupted reconstruction")
	}
}

func BenchmarkRsyncEncode(b *testing.B) {
	r, err := NewRsync(512)
	if err != nil {
		b.Fatal(err)
	}
	old, cur := versionedPair(b, 35)
	b.SetBytes(int64(len(cur)))
	for i := 0; i < b.N; i++ {
		if _, err := r.Encode(old, cur); err != nil {
			b.Fatal(err)
		}
	}
}
