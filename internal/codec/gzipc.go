package codec

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Gzip compresses content at the server and decompresses at the client
// using the LZ77-based gzip format, as in the paper's case study.
type Gzip struct {
	level int
}

// NewGzip returns the Gzip protocol at the default compression level.
func NewGzip() *Gzip { return &Gzip{level: gzip.DefaultCompression} }

// NewGzipLevel returns a Gzip protocol at a specific compression level,
// used by the ablation benchmarks.
func NewGzipLevel(level int) (*Gzip, error) {
	if level < gzip.HuffmanOnly || level > gzip.BestCompression {
		return nil, fmt.Errorf("codec: gzip level %d out of range", level)
	}
	return &Gzip{level: level}, nil
}

// Name implements Codec.
func (*Gzip) Name() string { return NameGzip }

// Cost implements Costed. Calibrated on the 500 MHz reference CPU so the
// case study reproduces the paper's per-environment protocol selections;
// see DESIGN.md ("Calibration").
func (*Gzip) Cost() CostModel {
	return CostModel{ServerNsPerByte: 289, ClientNsPerByte: 289, ServerFixed: 200 * 1000, ClientFixed: 100 * 1000}
}

// Encode implements Codec: gzip-compress cur; old is ignored.
func (g *Gzip) Encode(old, cur []byte) ([]byte, error) {
	var buf bytes.Buffer
	w, err := gzip.NewWriterLevel(&buf, g.level)
	if err != nil {
		return nil, fmt.Errorf("codec: gzip writer: %w", err)
	}
	if _, err := w.Write(cur); err != nil {
		return nil, fmt.Errorf("codec: gzip compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("codec: gzip flush: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (g *Gzip) Decode(old, payload []byte) ([]byte, error) {
	r, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("codec: gzip payload corrupt: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("codec: gzip decompress: %w", err)
	}
	return out, nil
}
