package codec

import "testing"

// FuzzDecoders hardens every wire decoder against adversarial payloads.
func FuzzDecoders(f *testing.F) {
	old := []byte("the old version the receiver holds, block after block of it")
	codecs := allFuzzCodecs(f)
	for _, c := range codecs {
		payload, err := c.Encode(old, []byte("the new version with changes"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range codecs {
			out, err := c.Decode(old, data)
			if err != nil {
				continue
			}
			if len(out) > 1<<26 {
				t.Fatalf("%s produced %d bytes from a %d-byte payload", c.Name(), len(out), len(data))
			}
		}
	})
}

func allFuzzCodecs(f *testing.F) []Costed {
	f.Helper()
	var out []Costed
	for _, name := range Names() {
		c, err := New(name)
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}
