package codec

import (
	"bytes"
	"testing"
	"testing/iotest"
)

// TestBitmapDecodeFromOneByteReader is the regression test for the
// short-read bug formerly latent in Decode's magic check: a bare r.Read
// into the 4-byte magic buffer assumed one call fills it. DecodeFrom now
// uses io.ReadFull throughout, so a transport delivering one byte per
// Read (as chunked transports legitimately may) must decode identically
// to the in-memory path.
func TestBitmapDecodeFromOneByteReader(t *testing.T) {
	b, err := NewBitmap(64)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("abcdefgh"), 40) // 320 bytes, 5 blocks
	cur := append([]byte(nil), old...)
	copy(cur[70:], "XXXX") // dirty the second block
	cur = append(cur, []byte("tail beyond old")...)

	payload, err := b.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.DecodeFrom(old, iotest.OneByteReader(bytes.NewReader(payload)))
	if err != nil {
		t.Fatalf("DecodeFrom(OneByteReader): %v", err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatalf("one-byte-at-a-time decode diverged: got %d bytes, want %d", len(got), len(cur))
	}
}

// TestBitmapDecodeTruncated verifies every prefix of a valid payload is
// rejected rather than misparsed — the failure mode a silent short read
// would hide.
func TestBitmapDecodeTruncated(t *testing.T) {
	b, err := NewBitmap(64)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{7}, 256)
	cur := bytes.Repeat([]byte{9}, 256)
	payload, err := b.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := b.Decode(old, payload[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d bytes accepted", cut, len(payload))
		}
	}
}
