// Package codec implements the four communication-optimization protocols
// of the paper's case study (Section 4.1) behind a single interface:
//
//   - Direct sending: no optimization, content sent as-is.
//   - Gzip: LZ77 compression at the server, decompression at the client.
//   - Bitmap: fixed-size blocking. Both versions are divided into
//     fixed-size blocks; the client sends digests of its blocks and the
//     server responds only with blocks that changed ([29]).
//   - Vary-sized blocking: LBFS-style content-defined chunking with Rabin
//     fingerprints; the server sends only chunks whose content does not
//     already exist anywhere in the client's old version ([34]).
//
// Each protocol also carries a CostModel: its computing overhead per byte
// on the paper's reference 500 MHz processor, the quantity Equation 3
// scales by device speed and the normalized ratio matrices.
package codec

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Codec is one communication-optimization protocol. Encode runs on the
// server given the version the client holds (old, nil if none) and the
// current version; Decode runs on the client to reconstruct the current
// version. Implementations must be safe for concurrent use.
type Codec interface {
	// Name returns the protocol's registry name.
	Name() string
	// Encode produces the downstream wire payload for cur given that the
	// receiver holds old (nil when the receiver has nothing).
	Encode(old, cur []byte) ([]byte, error)
	// Decode reconstructs cur from the payload and the receiver's old
	// version (nil when none was held).
	Decode(old, payload []byte) ([]byte, error)
}

// UpstreamCoster is implemented by protocols that send request-direction
// data beyond the request itself (Bitmap's client block digests). The
// returned size is counted as additional traffic by the experiment
// harness.
type UpstreamCoster interface {
	UpstreamBytes(old []byte) int64
}

// CostModel is a protocol's computing overhead on the reference 500 MHz
// processor, expressed per processed byte plus a fixed setup term. The
// paper pre-tests each PAD to obtain exactly these server/client vectors
// (Equation 1); here they are calibrated constants documented in DESIGN.md.
type CostModel struct {
	ServerNsPerByte float64
	ClientNsPerByte float64
	ServerFixed     time.Duration
	ClientFixed     time.Duration
}

// ServerTime returns the reference-CPU server-side computing overhead for
// n processed bytes.
func (m CostModel) ServerTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	return m.ServerFixed + time.Duration(m.ServerNsPerByte*float64(n))
}

// ClientTime returns the reference-CPU client-side computing overhead for
// n processed bytes.
func (m CostModel) ClientTime(n int64) time.Duration {
	if n < 0 {
		n = 0
	}
	return m.ClientFixed + time.Duration(m.ClientNsPerByte*float64(n))
}

// Costed couples a Codec with its reference cost model; the case-study
// constructors below all return Costed implementations.
type Costed interface {
	Codec
	Cost() CostModel
}

// Registry names of the case-study protocols.
const (
	NameDirect    = "direct"
	NameGzip      = "gzip"
	NameBitmap    = "bitmap"
	NameVaryBlock = "varyblock"
)

var (
	regMu    sync.RWMutex
	registry = map[string]func() (Costed, error){}
)

// Register installs a protocol constructor under a name. It returns an
// error if the name is already taken.
func Register(name string, ctor func() (Costed, error)) error {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("codec: protocol %q already registered", name)
	}
	registry[name] = ctor
	return nil
}

// New constructs a registered protocol by name.
func New(name string) (Costed, error) {
	regMu.RLock()
	ctor, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("codec: unknown protocol %q", name)
	}
	return ctor()
}

// Names returns the sorted registry names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(Register(NameDirect, func() (Costed, error) { return NewDirect(), nil }))
	must(Register(NameGzip, func() (Costed, error) { return NewGzip(), nil }))
	must(Register(NameBitmap, func() (Costed, error) { return NewBitmap(DefaultBlockSize) }))
	must(Register(NameVaryBlock, func() (Costed, error) { return NewVaryBlock() }))
	must(Register(NameRsync, func() (Costed, error) { return NewRsync(DefaultBlockSize) }))
}
