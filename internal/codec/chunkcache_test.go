package codec

import (
	"bytes"
	"crypto/sha1"
	"fmt"
	"sync"
	"testing"
)

// corpusPairs builds a deterministic set of (old, cur) version pairs.
func corpusPairs(t testing.TB, n int) [][2][]byte {
	t.Helper()
	pairs := make([][2][]byte, 0, n)
	for i := 0; i < n; i++ {
		old, cur := versionedPair(t, int64(100+i))
		pairs = append(pairs, [2][]byte{old, cur})
	}
	return pairs
}

// TestCachedEncodeMatchesUncached locks in the engine's core contract:
// attaching a ChunkCache changes the work profile, never the bytes.
func TestCachedEncodeMatchesUncached(t *testing.T) {
	pairs := corpusPairs(t, 4)
	cache := NewChunkCache(0)

	plainVary, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	cachedVary, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	cachedVary.UseChunkCache(cache)

	plainBm, err := NewBitmap(DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	cachedBm, err := NewBitmap(DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	cachedBm.UseChunkCache(cache)

	type pairCodec struct {
		name          string
		plain, cached Codec
	}
	cases := []pairCodec{
		{"varyblock", plainVary, cachedVary},
		{"bitmap", plainBm, cachedBm},
	}
	for _, pc := range cases {
		for round := 0; round < 2; round++ { // round 1 = cold cache, round 2 = warm
			for pi, pr := range pairs {
				for _, ab := range [][2][]byte{{pr[0], pr[1]}, {nil, pr[1]}, {pr[1], pr[1]}} {
					want, err := pc.plain.Encode(ab[0], ab[1])
					if err != nil {
						t.Fatal(err)
					}
					got, err := pc.cached.Encode(ab[0], ab[1])
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s pair %d round %d: cached payload differs from stateless payload", pc.name, pi, round)
					}
					dec, err := pc.cached.Decode(ab[0], got)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(dec, ab[1]) {
						t.Fatalf("%s pair %d round %d: cached decode mismatch", pc.name, pi, round)
					}
				}
			}
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("cache never hit across warm rounds: %+v", st)
	}
}

// TestSharedCacheConcurrent hammers one shared VaryBlock + ChunkCache from
// many goroutines (run under -race in CI) and asserts every concurrent
// output equals the serial stateless output.
func TestSharedCacheConcurrent(t *testing.T) {
	pairs := corpusPairs(t, 3)
	plain, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	type expect struct{ payload, cur []byte }
	want := make([]expect, len(pairs))
	for i, pr := range pairs {
		p, err := plain.Encode(pr[0], pr[1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = expect{payload: p, cur: pr[1]}
	}

	// Tiny capacity forces concurrent eviction alongside concurrent hits.
	cache := NewChunkCache(4)
	shared, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	shared.UseChunkCache(cache)
	sharedBm, err := NewBitmap(DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	sharedBm.UseChunkCache(cache)

	const goroutines = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				pi := (g + i) % len(pairs)
				pr := pairs[pi]
				payload, err := shared.Encode(pr[0], pr[1])
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(payload, want[pi].payload) {
					errs <- fmt.Errorf("goroutine %d iter %d: concurrent payload differs from serial", g, i)
					return
				}
				got, err := shared.Decode(pr[0], payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want[pi].cur) {
					errs <- fmt.Errorf("goroutine %d iter %d: concurrent decode mismatch", g, i)
					return
				}
				if _, err := sharedBm.Encode(pr[0], pr[1]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries > 4 {
		t.Fatalf("LRU exceeded its capacity: %+v", st)
	}
}

func TestChunkCacheLRUEviction(t *testing.T) {
	cache := NewChunkCache(2)
	vb, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	vb.UseChunkCache(cache)
	a, b := versionedPair(t, 200)
	c, _ := versionedPair(t, 201)
	for _, data := range [][]byte{a, b, c} {
		if _, err := vb.Encode(nil, data); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (capacity)", st.Entries)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3", st.Misses)
	}
	// `a` was evicted (least recently used); touching it again must miss,
	// while `c` (most recent) must hit.
	if _, err := vb.Encode(nil, c); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != st.Hits+1 {
		t.Fatalf("expected a hit on the most recent entry: %+v", got)
	}
	if _, err := vb.Encode(nil, a); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Misses != st.Misses+1 {
		t.Fatalf("expected a miss on the evicted entry: %+v", got)
	}
}

// TestParallelDigestsMatchSerial pins the determinism of the digest pool:
// indexed results mean chunk order, not scheduling order, decides output.
func TestParallelDigestsMatchSerial(t *testing.T) {
	_, cur := versionedPair(t, 300)
	// Replicate the page well past parallelDigestThreshold.
	big := bytes.Repeat(cur, 1+(2*parallelDigestThreshold)/len(cur))

	bm, err := NewBitmap(DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	par := bm.BlockDigests(big)
	var serial [][sha1.Size]byte
	for start := 0; start < len(big); start += DefaultBlockSize {
		end := start + DefaultBlockSize
		if end > len(big) {
			end = len(big)
		}
		serial = append(serial, sha1.Sum(big[start:end]))
	}
	if len(par) != len(serial) {
		t.Fatalf("parallel produced %d digests, serial %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i] != serial[i] {
			t.Fatalf("digest %d differs between parallel and serial paths", i)
		}
	}

	vb, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	chunks := vb.chunker.Split(big)
	sums := sha1Chunks(big, chunks)
	for i, c := range chunks {
		if want := sha1.Sum(big[c.Offset : c.Offset+c.Length]); sums[i] != want {
			t.Fatalf("chunk digest %d differs between pool and direct computation", i)
		}
	}
}

func TestVaryDecodeCapsHostileHeaderReservation(t *testing.T) {
	vb, err := NewVaryBlock()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-build a payload whose header claims 4 GiB of content but whose
	// body is a single tiny literal: decode must fail on the length check,
	// not OOM on the up-front reservation.
	payload := append([]byte(nil), varyMagic...)
	payload = append(payload, 0x80, 0x80, 0x80, 0x80, 0x10) // curLen = 1<<32
	payload = append(payload, 0)                            // oldLen = 0
	payload = append(payload, 1)                            // nops = 1
	payload = append(payload, varyOpLit, 3, 'a', 'b', 'c')
	if _, err := vb.Decode(nil, payload); err == nil {
		t.Fatal("hostile 4GiB header decoded without error")
	}
}
