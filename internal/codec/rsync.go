package codec

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"io"
)

// rsyncMagic identifies an Rsync wire payload.
var rsyncMagic = []byte("FRS1")

// NameRsync is the registry name of the fix-sized blocking protocol.
const NameRsync = "rsync"

// Rsync op tags.
const (
	rsyncOpCopy = 0 // copy old block by index
	rsyncOpLit  = 1 // literal bytes follow
)

// Rsync implements fix-sized blocking as used by the rsync software
// (Tridgell & Mackerras [50], discussed in the paper's related work): the
// receiver's old version is divided into fixed-size blocks, each
// summarized by a fast rolling checksum and a strong SHA-1 digest; the
// sender slides a window over the new version and emits block references
// wherever a block of the old version reappears at ANY offset, literals
// elsewhere. Unlike Bitmap it survives insertions; unlike Vary-sized
// blocking its signatures are fixed-rate.
type Rsync struct {
	blockSize int
}

// NewRsync returns the protocol with the given block size.
func NewRsync(blockSize int) (*Rsync, error) {
	if blockSize < 16 || blockSize > 1<<20 {
		return nil, fmt.Errorf("codec: rsync block size %d out of range [16, 1MiB]", blockSize)
	}
	return &Rsync{blockSize: blockSize}, nil
}

// Name implements Codec.
func (*Rsync) Name() string { return NameRsync }

// BlockSize returns the configured block granularity.
func (r *Rsync) BlockSize() int { return r.blockSize }

// Cost implements Costed: the sliding-window match is the dominant
// (sender-side) term; reconstruction is cheap.
func (*Rsync) Cost() CostModel {
	return CostModel{ServerNsPerByte: 2400, ClientNsPerByte: 700, ServerFixed: 400 * 1000, ClientFixed: 200 * 1000}
}

// UpstreamBytes implements UpstreamCoster: the receiver uploads a weak
// (4-byte) and strong (20-byte) checksum per block of its old version.
func (r *Rsync) UpstreamBytes(old []byte) int64 {
	blocks := len(old) / r.blockSize // rsync signs only full blocks
	return int64(blocks) * (4 + sha1.Size)
}

// weakSum is the rsync rolling checksum (a variant of Adler-32 without the
// modulo): a = sum of bytes, b = sum of (len-i)*byte_i, both mod 2^16.
func weakSum(p []byte) uint32 {
	var a, b uint32
	for i, c := range p {
		a += uint32(c)
		b += uint32(len(p)-i) * uint32(c)
	}
	return (a & 0xffff) | (b << 16)
}

// roll updates a weak checksum when the window slides one byte: out
// leaves, in enters, n is the window length.
func roll(sum uint32, out, in byte, n int) uint32 {
	a := sum & 0xffff
	b := sum >> 16
	a = (a - uint32(out) + uint32(in)) & 0xffff
	b = (b - uint32(n)*uint32(out) + a) & 0xffff
	return a | (b << 16)
}

// Encode implements Codec. Payload layout:
//
//	"FRS1" | uvarint blockSize | uvarint len(cur) | uvarint len(old) |
//	uvarint nops | ops: tag 0 => uvarint oldBlockIndex
//	                    tag 1 => uvarint litLen | bytes
func (r *Rsync) Encode(old, cur []byte) ([]byte, error) {
	bs := r.blockSize
	// Signature table of the old version's full blocks.
	type sig struct {
		strong [sha1.Size]byte
		index  int
	}
	table := make(map[uint32][]sig)
	for i := 0; i+bs <= len(old); i += bs {
		blk := old[i : i+bs]
		w := weakSum(blk)
		table[w] = append(table[w], sig{strong: sha1.Sum(blk), index: i / bs})
	}

	var ops bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	nops := 0
	emitLit := func(lit []byte) {
		if len(lit) == 0 {
			return
		}
		ops.WriteByte(rsyncOpLit)
		ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(lit)))])
		ops.Write(lit)
		nops++
	}
	emitCopy := func(index int) {
		ops.WriteByte(rsyncOpCopy)
		ops.Write(tmp[:binary.PutUvarint(tmp[:], uint64(index))])
		nops++
	}

	litStart := 0 // start of the pending literal run
	pos := 0
	var w uint32
	haveSum := false
	for pos+bs <= len(cur) {
		if !haveSum {
			w = weakSum(cur[pos : pos+bs])
			haveSum = true
		}
		matched := -1
		if cands, ok := table[w]; ok {
			strong := sha1.Sum(cur[pos : pos+bs])
			for _, c := range cands {
				if c.strong == strong {
					matched = c.index
					break
				}
			}
		}
		if matched >= 0 {
			emitLit(cur[litStart:pos])
			emitCopy(matched)
			pos += bs
			litStart = pos
			haveSum = false
			continue
		}
		// Slide one byte.
		if pos+bs < len(cur) {
			w = roll(w, cur[pos], cur[pos+bs], bs)
		}
		pos++
	}
	emitLit(cur[litStart:])

	out := bytes.NewBuffer(nil)
	out.Write(rsyncMagic)
	for _, u := range []uint64{uint64(bs), uint64(len(cur)), uint64(len(old)), uint64(nops)} {
		out.Write(tmp[:binary.PutUvarint(tmp[:], u)])
	}
	out.Write(ops.Bytes())
	return out.Bytes(), nil
}

// Decode implements Codec.
func (r *Rsync) Decode(old, payload []byte) ([]byte, error) {
	rd := bytes.NewReader(payload)
	magic := make([]byte, len(rsyncMagic))
	if _, err := io.ReadFull(rd, magic); err != nil || !bytes.Equal(magic, rsyncMagic) {
		return nil, fmt.Errorf("codec: rsync payload: bad magic")
	}
	readU := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(rd)
		if err != nil {
			return 0, fmt.Errorf("codec: rsync payload: reading %s: %w", what, err)
		}
		return u, nil
	}
	bsU, err := readU("block size")
	if err != nil {
		return nil, err
	}
	bs := int(bsU)
	if bs < 16 || bs > 1<<20 {
		return nil, fmt.Errorf("codec: rsync payload: block size %d out of range", bs)
	}
	curLen, err := readU("content length")
	if err != nil {
		return nil, err
	}
	if curLen > 1<<32 {
		return nil, fmt.Errorf("codec: rsync payload: content length %d unreasonable", curLen)
	}
	oldLen, err := readU("old length")
	if err != nil {
		return nil, err
	}
	if int(oldLen) != len(old) {
		return nil, fmt.Errorf("codec: rsync payload encoded against %d-byte old version, receiver holds %d bytes", oldLen, len(old))
	}
	nops, err := readU("op count")
	if err != nil {
		return nil, err
	}
	if nops > curLen+1 {
		return nil, fmt.Errorf("codec: rsync payload: %d ops for %d bytes is impossible", nops, curLen)
	}
	reserve := curLen
	if reserve > maxDecodeReserve {
		// An unvalidated header length must not force a huge allocation;
		// the output grows naturally as ops actually produce bytes.
		reserve = maxDecodeReserve
	}
	out := make([]byte, 0, reserve)
	for op := uint64(0); op < nops; op++ {
		tag, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("codec: rsync payload: truncated at op %d: %w", op, err)
		}
		switch tag {
		case rsyncOpCopy:
			idx, err := readU("block index")
			if err != nil {
				return nil, err
			}
			start := int(idx) * bs
			if start < 0 || start+bs > len(old) {
				return nil, fmt.Errorf("codec: rsync payload references old block %d beyond %d bytes", idx, len(old))
			}
			out = append(out, old[start:start+bs]...)
		case rsyncOpLit:
			n, err := readU("literal length")
			if err != nil {
				return nil, err
			}
			if n > uint64(rd.Len()) {
				return nil, fmt.Errorf("codec: rsync payload: literal of %d bytes exceeds remaining %d", n, rd.Len())
			}
			lit := make([]byte, n)
			if _, err := io.ReadFull(rd, lit); err != nil {
				return nil, fmt.Errorf("codec: rsync payload: truncated literal: %w", err)
			}
			out = append(out, lit...)
		default:
			return nil, fmt.Errorf("codec: rsync payload: unknown op tag %d", tag)
		}
	}
	if uint64(len(out)) != curLen {
		return nil, fmt.Errorf("codec: rsync payload reconstructed %d bytes, header says %d", len(out), curLen)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("codec: rsync payload has %d trailing bytes", rd.Len())
	}
	return out, nil
}
