package codec

import (
	"container/list"
	"crypto/sha1"
	"sync"

	"fractal/internal/rabin"
)

// ChunkIndex is the preprocessed identity of one content version under one
// blocking configuration: its chunk list, the SHA-1 of every chunk, and a
// digest → first-occurrence index. Computing it is the dominant server-side
// cost of the differencing protocols (the Figure 10/11 observation), and it
// depends only on the bytes and the configuration — never on the request —
// so it is computed once per version and shared. A ChunkIndex is immutable
// after construction and safe for concurrent use.
type ChunkIndex struct {
	Chunks []rabin.Chunk
	Sums   [][sha1.Size]byte
	first  map[[sha1.Size]byte]int // digest -> lowest chunk index
}

// Lookup returns the first chunk whose content has the given digest.
func (ix *ChunkIndex) Lookup(sum [sha1.Size]byte) (int, bool) {
	i, ok := ix.first[sum]
	return i, ok
}

// buildChunkIndex chunks data and digests every chunk (in parallel above
// the pool threshold), keeping the first occurrence of each digest — the
// same tie-break the wire format has always used, so cached and stateless
// encodes emit identical ref indices.
func buildChunkIndex(ch *rabin.Chunker, data []byte) *ChunkIndex {
	chunks := ch.Split(data)
	sums := sha1Chunks(data, chunks)
	first := make(map[[sha1.Size]byte]int, len(chunks))
	for i, sum := range sums {
		if _, dup := first[sum]; !dup {
			first[sum] = i
		}
	}
	return &ChunkIndex{Chunks: chunks, Sums: sums, first: first}
}

// buildBlockIndex digests data in fixed blockSize blocks (the Bitmap
// protocol's granularity); only Sums is populated.
func buildBlockIndex(blockSize int, data []byte) *ChunkIndex {
	return &ChunkIndex{Sums: sha1Blocks(data, blockSize)}
}

// cacheKey addresses one ChunkIndex: the blocking configuration (a
// protocol-specific descriptor string, e.g. the chunker parameters) plus
// the SHA-1 of the content bytes. Content addressing means a version
// re-installed under another resource name, or shared between encode and
// decode sides of the same process, still hits.
type cacheKey struct {
	conf string
	sum  [sha1.Size]byte
}

// ChunkCacheStats is a snapshot of cache effectiveness counters.
type ChunkCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// ChunkCache is a bounded LRU of ChunkIndex values shared across codecs
// and requests. It is safe for concurrent use. A cache miss builds outside
// the lock, so a burst of first requests for the same version may build the
// index more than once; every build of the same key produces an identical
// index, so whichever insert lands last is indistinguishable.
type ChunkCache struct {
	mu      sync.Mutex
	cap     int
	order   list.List // front = most recent; values are *cacheEntry
	entries map[cacheKey]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key cacheKey
	ix  *ChunkIndex
}

// DefaultChunkCacheEntries is the capacity used when NewChunkCache is
// given a non-positive value.
const DefaultChunkCacheEntries = 128

// NewChunkCache returns an LRU chunk-index cache holding up to capacity
// entries (DefaultChunkCacheEntries if capacity <= 0).
func NewChunkCache(capacity int) *ChunkCache {
	if capacity <= 0 {
		capacity = DefaultChunkCacheEntries
	}
	c := &ChunkCache{cap: capacity, entries: make(map[cacheKey]*list.Element)}
	c.order.Init()
	return c
}

// getOrBuild returns the index for (conf, data), building and inserting it
// on a miss.
func (c *ChunkCache) getOrBuild(conf string, data []byte, build func() *ChunkIndex) *ChunkIndex {
	key := cacheKey{conf: conf, sum: sha1.Sum(data)}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		ix := el.Value.(*cacheEntry).ix
		c.mu.Unlock()
		return ix
	}
	c.misses++
	c.mu.Unlock()

	ix := build()

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A concurrent builder won the race; keep its entry.
		c.order.MoveToFront(el)
		ix = el.Value.(*cacheEntry).ix
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, ix: ix})
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	return ix
}

// Stats returns a snapshot of hit/miss counters and the current entry
// count.
func (c *ChunkCache) Stats() ChunkCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ChunkCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len()}
}

// ChunkCacheUser is implemented by codecs that can share a ChunkCache.
// Passing nil returns the codec to stateless operation. Cached and
// stateless operation produce byte-identical payloads; only the work
// profile changes.
type ChunkCacheUser interface {
	UseChunkCache(*ChunkCache)
}
