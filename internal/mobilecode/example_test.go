package mobilecode_test

import (
	"fmt"

	"fractal/internal/mobilecode"
)

// A PAD program is tiny assembly over codec primitives; this one
// compresses content only when it exceeds a threshold.
func ExampleAssemble() {
	prog, err := mobilecode.Assemble(`
		SIZE            ; len(content)
		PUSH 64
		LT              ; small?
		JZ big
		CALL identity   ; send tiny content as-is
		HALT
	big:
		CALL gzip.encode
		HALT`)
	if err != nil {
		fmt.Println(err)
		return
	}
	hosts, err := mobilecode.HostTable(nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	vm, err := mobilecode.NewVM(hosts, mobilecode.DefaultSandbox())
	if err != nil {
		fmt.Println(err)
		return
	}
	small, err := vm.Run(prog, [][]byte{[]byte("short")})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("small input passes through: %q\n", small[len(small)-1])
	// Output: small input passes through: "short"
}
