package mobilecode

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fractal/internal/codec"
	"fractal/internal/rabin"
	"fractal/internal/workload"
)

func testSigner(t testing.TB) *Signer {
	t.Helper()
	s, err := NewSigner("app-server")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func testTrust(t testing.TB, signers ...*Signer) *TrustList {
	t.Helper()
	tr := NewTrustList()
	for _, s := range signers {
		if err := tr.Add(s.Entity, s.PublicKey()); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func simplePayload(t testing.TB) Payload {
	t.Helper()
	bin, err := MustAssemble("CALL identity\nHALT").MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return Payload{Protocol: codec.NameDirect, Encode: bin, Decode: bin}
}

func TestModulePackUnpackRoundTrip(t *testing.T) {
	s := testSigner(t)
	m, err := NewModule("pad-x", "1.0", simplePayload(t), s)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	u, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	if u.ID != m.ID || u.Version != m.Version || u.Entity != m.Entity {
		t.Fatalf("identity mismatch: %+v vs %+v", u, m)
	}
	if !bytes.Equal(u.Payload, m.Payload) || u.Digest != m.Digest || !bytes.Equal(u.Sig, m.Sig) {
		t.Fatal("payload/digest/signature mismatch after round trip")
	}
	if m.Size() != int64(len(packed)) {
		t.Fatalf("Size() = %d, want %d", m.Size(), len(packed))
	}
}

func TestNewModuleValidation(t *testing.T) {
	s := testSigner(t)
	p := simplePayload(t)
	if _, err := NewModule("", "1", p, s); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := NewModule("x", "", p, s); err == nil {
		t.Error("empty version accepted")
	}
	if _, err := NewModule("x", "1", p, nil); err == nil {
		t.Error("nil signer accepted")
	}
	bad := p
	bad.Protocol = ""
	if _, err := NewModule("x", "1", bad, s); err == nil {
		t.Error("payload without protocol accepted")
	}
	bad = p
	bad.Encode = []byte{0xFF, 0xFF}
	if _, err := NewModule("x", "1", bad, s); err == nil {
		t.Error("corrupt encode program accepted")
	}
}

func TestUnpackRejectsTampering(t *testing.T) {
	s := testSigner(t)
	m, err := NewModule("pad-x", "1.0", simplePayload(t), s)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the payload region: the digest check must trip.
	tampered := append([]byte(nil), packed...)
	tampered[len(tampered)-80] ^= 0x01
	if _, err := Unpack(tampered); err == nil {
		t.Error("tampered module unpacked cleanly")
	}
	if _, err := Unpack(packed[:len(packed)/2]); err == nil {
		t.Error("truncated module unpacked")
	}
	if _, err := Unpack([]byte("garbage")); err == nil {
		t.Error("garbage unpacked")
	}
	if _, err := Unpack(append(packed, 0xAA)); err == nil {
		t.Error("module with trailing bytes unpacked")
	}
}

func TestSignatureVerification(t *testing.T) {
	good := testSigner(t)
	evil, err := NewSigner("mallory")
	if err != nil {
		t.Fatal(err)
	}
	trust := testTrust(t, good)

	m, err := NewModule("pad-x", "1.0", simplePayload(t), good)
	if err != nil {
		t.Fatal(err)
	}
	if err := trust.Verify(m.Entity, m.ID, m.Version, m.Digest, m.Sig); err != nil {
		t.Fatalf("legitimate module rejected: %v", err)
	}
	// Untrusted signer.
	em, err := NewModule("pad-x", "1.0", simplePayload(t), evil)
	if err != nil {
		t.Fatal(err)
	}
	if err := trust.Verify(em.Entity, em.ID, em.Version, em.Digest, em.Sig); err == nil {
		t.Error("module signed by untrusted entity verified")
	}
	// Signature transplanted onto a different PAD id.
	if err := trust.Verify(m.Entity, "pad-other", m.Version, m.Digest, m.Sig); err == nil {
		t.Error("signature accepted for a different PAD id")
	}
	// Wrong version.
	if err := trust.Verify(m.Entity, m.ID, "2.0", m.Digest, m.Sig); err == nil {
		t.Error("signature accepted for a different version")
	}
}

func TestTrustListManagement(t *testing.T) {
	s := testSigner(t)
	tr := NewTrustList()
	if err := tr.Add("", s.PublicKey()); err == nil {
		t.Error("empty entity accepted")
	}
	if err := tr.Add("e", []byte("short")); err == nil {
		t.Error("malformed key accepted")
	}
	if err := tr.Add("alpha", s.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("beta", s.PublicKey()); err != nil {
		t.Fatal(err)
	}
	es := tr.Entities()
	if len(es) != 2 || es[0] != "alpha" || es[1] != "beta" {
		t.Fatalf("entities = %v", es)
	}
	tr.Remove("alpha")
	if got := tr.Entities(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("after removal entities = %v", got)
	}
}

func TestLoaderFullPipeline(t *testing.T) {
	s := testSigner(t)
	trust := testTrust(t, s)
	loader, err := NewLoader(trust, DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	mods, err := BuildBuiltins("1.0", s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 4 {
		t.Fatalf("built %d modules, want 4", len(mods))
	}
	// Real versioned content through every deployed PAD.
	c, err := workload.Generate(workload.Config{Pages: 1, TextBytes: 4096, Images: 2, ImageBytes: 16384, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.Mutate(c.Pages[0], workload.DefaultMutation(9))
	if err != nil {
		t.Fatal(err)
	}
	old, cur := c.Pages[0].Bytes(), v2.Bytes()
	for _, m := range mods {
		packed, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		pad, err := loader.Load(packed)
		if err != nil {
			t.Fatalf("loading %s: %v", m.ID, err)
		}
		if pad.ID() != m.ID {
			t.Fatalf("deployed id = %q, want %q", pad.ID(), m.ID)
		}
		payload, err := pad.Encode(old, cur)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.ID, err)
		}
		got, err := pad.Decode(old, payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.ID, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: mobile-code round trip mismatch", m.ID)
		}
	}
}

func TestLoaderMatchesNativeCodecs(t *testing.T) {
	// A deployed PAD must produce payloads the native codec implementation
	// can decode and vice versa: the mobile code is the same protocol.
	s := testSigner(t)
	loader, err := NewLoader(testTrust(t, s), DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	c, err := workload.Generate(workload.Config{Pages: 1, TextBytes: 2048, Images: 1, ImageBytes: 16384, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.Mutate(c.Pages[0], workload.DefaultMutation(11))
	if err != nil {
		t.Fatal(err)
	}
	old, cur := c.Pages[0].Bytes(), v2.Bytes()
	for _, spec := range BuiltinSpecs() {
		m, err := BuildModule(spec, "1.0", s)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := m.Pack()
		if err != nil {
			t.Fatal(err)
		}
		pad, err := loader.Load(packed)
		if err != nil {
			t.Fatal(err)
		}
		native, err := codec.New(spec.Protocol)
		if err != nil {
			t.Fatal(err)
		}
		fromPAD, err := pad.Encode(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		got, err := native.Decode(old, fromPAD)
		if err != nil {
			t.Fatalf("%s: native decode of PAD payload: %v", spec.ID, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: native decode of PAD payload mismatch", spec.ID)
		}
		fromNative, err := native.Encode(old, cur)
		if err != nil {
			t.Fatal(err)
		}
		got, err = pad.Decode(old, fromNative)
		if err != nil {
			t.Fatalf("%s: PAD decode of native payload: %v", spec.ID, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("%s: PAD decode of native payload mismatch", spec.ID)
		}
	}
}

func TestLoaderRejectsUntrustedAndTampered(t *testing.T) {
	s := testSigner(t)
	evil, err := NewSigner("mallory")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(testTrust(t, s), DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	em, err := NewModule("pad-x", "1", simplePayload(t), evil)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := em.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load(packed); err == nil {
		t.Error("loader deployed PAD from untrusted signer")
	}
	// No trust list at all.
	bare, err := NewLoader(nil, DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := NewModule("pad-x", "1", simplePayload(t), s)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := gm.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Load(gp); err == nil {
		t.Error("loader without trust list deployed a PAD")
	}
}

func TestBuiltinSpecsCoverTable1(t *testing.T) {
	specs := BuiltinSpecs()
	wantProtos := map[string]bool{
		codec.NameDirect: false, codec.NameGzip: false,
		codec.NameBitmap: false, codec.NameVaryBlock: false,
	}
	for _, s := range specs {
		if _, ok := wantProtos[s.Protocol]; !ok {
			t.Errorf("unexpected protocol %q", s.Protocol)
		}
		wantProtos[s.Protocol] = true
		if !strings.HasPrefix(s.ID, "pad-") {
			t.Errorf("PAD id %q missing pad- prefix", s.ID)
		}
	}
	for p, seen := range wantProtos {
		if !seen {
			t.Errorf("Table 1 protocol %q has no PAD spec", p)
		}
	}
}

func TestBuiltinModuleSizesAreOrdered(t *testing.T) {
	// The overhead model depends on PAD sizes being nontrivial and
	// distinct: direct < gzip < bitmap < vary.
	s := testSigner(t)
	mods, err := BuildBuiltins("1.0", s)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int64{}
	for _, m := range mods {
		sizes[m.ID] = m.Size()
	}
	if !(sizes["pad-direct"] < sizes["pad-gzip"] &&
		sizes["pad-gzip"] < sizes["pad-bitmap"] &&
		sizes["pad-bitmap"] < sizes["pad-vary"]) {
		t.Fatalf("PAD sizes not ordered: %v", sizes)
	}
	if sizes["pad-direct"] < 1024 {
		t.Fatalf("pad-direct suspiciously small: %d bytes", sizes["pad-direct"])
	}
}

func TestHostTableParamValidation(t *testing.T) {
	bad := []map[string]string{
		{"gzip.level": "lots"},
		{"gzip.level": "42"},
		{"bitmap.block": "1"},
		{"vary.maskbits": "99"},
		{"vary.min": "banana"},
	}
	for i, params := range bad {
		if _, err := HostTable(params); err == nil {
			t.Errorf("case %d: bad params %v accepted", i, params)
		}
	}
	if _, err := HostTable(map[string]string{"lib": "opaque blob ignored"}); err != nil {
		t.Fatalf("unrelated params rejected: %v", err)
	}
}

// Property: pack/unpack round trip preserves arbitrary ids and versions.
func TestModuleIdentityRoundTripProperty(t *testing.T) {
	s := testSigner(t)
	payload := simplePayload(t)
	f := func(idRaw, verRaw []byte) bool {
		id := "pad-" + sanitize(idRaw)
		ver := "v" + sanitize(verRaw)
		m, err := NewModule(id, ver, payload, s)
		if err != nil {
			return false
		}
		packed, err := m.Pack()
		if err != nil {
			return false
		}
		u, err := Unpack(packed)
		return err == nil && u.ID == id && u.Version == ver
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// sanitize maps arbitrary bytes into a short printable token.
func sanitize(b []byte) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	if len(b) > 32 {
		b = b[:32]
	}
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = alpha[int(c)%len(alpha)]
	}
	return string(out)
}

func TestCascadeCompositeProtocol(t *testing.T) {
	s := testSigner(t)
	loader, err := NewLoader(testTrust(t, s), DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModule(CascadeSpec(), "1.0", s)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	pad, err := loader.Load(packed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := workload.Generate(workload.Config{Pages: 1, TextBytes: 8192, Images: 2, ImageBytes: 16384, Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := workload.Mutate(c.Pages[0], workload.DefaultMutation(61))
	if err != nil {
		t.Fatal(err)
	}
	old, cur := c.Pages[0].Bytes(), v2.Bytes()
	payload, err := pad.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pad.Decode(old, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("cascade round trip mismatch")
	}
	// The cascade must beat plain vary on this delta: literal chunks
	// (fresh slabs + edited text) compress.
	vb, err := codec.NewVaryBlockConfig(rabin.DefaultChunkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := vb.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) >= len(plain) {
		t.Fatalf("cascade payload %d not below plain vary %d", len(payload), len(plain))
	}
	t.Logf("cascade: %d bytes vs plain vary %d (%.0f%% smaller)",
		len(payload), len(plain), 100*(1-float64(len(payload))/float64(len(plain))))
}

func TestCascadeInteroperatesWithNativePrimitives(t *testing.T) {
	// Decoding a cascade payload by hand with the two native codecs
	// proves the mobile code is the same protocol, not a lookalike.
	s := testSigner(t)
	loader, err := NewLoader(testTrust(t, s), DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildModule(CascadeSpec(), "1.0", s)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	pad, err := loader.Load(packed)
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte("basis-content-"), 2000)
	cur := append(append([]byte(nil), old[:10000]...), bytes.Repeat([]byte("NEW"), 4000)...)
	payload, err := pad.Encode(old, cur)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := codec.NewGzipLevel(6)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := gz.Decode(nil, payload)
	if err != nil {
		t.Fatalf("outer layer is not gzip: %v", err)
	}
	vb, err := codec.NewVaryBlockConfig(rabin.DefaultChunkerConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := vb.Decode(old, inner)
	if err != nil {
		t.Fatalf("inner layer is not a vary delta: %v", err)
	}
	if !bytes.Equal(got, cur) {
		t.Fatal("hand-decoded cascade mismatch")
	}
}
