package mobilecode

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha1"
	"crypto/subtle"
	"fmt"
	"sort"
	"sync"
)

// DigestEqual reports whether two SHA-1 payload digests match, in constant
// time. It is the single designated digest comparison of the deployment
// pipeline: signature checks go through ed25519.Verify and digest checks
// go through here, which the digestsafe analyzer (cmd/fractal-vet)
// enforces across mobilecode, cdn, and client.
func DigestEqual(a, b [sha1.Size]byte) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// Signer produces code signatures for PAD modules, the paper's
// code-signing mechanism (Section 3.5): clients manage a list of entities
// they trust and verify that every PAD was signed by one of them.
type Signer struct {
	Entity string
	priv   ed25519.PrivateKey
	pub    ed25519.PublicKey
}

// NewSigner generates a fresh signing identity for an entity (typically
// the application-server operator).
func NewSigner(entity string) (*Signer, error) {
	if entity == "" {
		return nil, fmt.Errorf("mobilecode: signer needs a non-empty entity name")
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: generating signing key: %w", err)
	}
	return &Signer{Entity: entity, priv: priv, pub: pub}, nil
}

// PublicKey returns the verification key to be placed on client trust
// lists.
func (s *Signer) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), s.pub...)
}

// Sign signs a module digest (with the module identity mixed in so a
// signature cannot be transplanted onto a different PAD).
func (s *Signer) Sign(id, version string, digest [sha1.Size]byte) []byte {
	return ed25519.Sign(s.priv, signedMessage(id, version, digest))
}

// signedMessage binds the signature to the module identity and payload
// digest.
func signedMessage(id, version string, digest [sha1.Size]byte) []byte {
	msg := make([]byte, 0, len(id)+len(version)+sha1.Size+2)
	msg = append(msg, id...)
	msg = append(msg, 0)
	msg = append(msg, version...)
	msg = append(msg, 0)
	msg = append(msg, digest[:]...)
	return msg
}

// TrustList is the client's set of trusted signing entities. It is safe
// for concurrent use.
type TrustList struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewTrustList returns an empty trust list.
func NewTrustList() *TrustList {
	return &TrustList{keys: map[string]ed25519.PublicKey{}}
}

// Add trusts an entity's public key. Re-adding an entity replaces its key.
func (t *TrustList) Add(entity string, key ed25519.PublicKey) error {
	if entity == "" {
		return fmt.Errorf("mobilecode: trust list: empty entity name")
	}
	if len(key) != ed25519.PublicKeySize {
		return fmt.Errorf("mobilecode: trust list: bad key size %d for %q", len(key), entity)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keys[entity] = append(ed25519.PublicKey(nil), key...)
	return nil
}

// Remove revokes trust in an entity.
func (t *TrustList) Remove(entity string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.keys, entity)
}

// Entities returns the sorted names of trusted entities.
func (t *TrustList) Entities() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.keys))
	for e := range t.keys {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Verify checks that sig is a valid signature over the module identity by
// the named entity and that the entity is trusted.
func (t *TrustList) Verify(entity, id, version string, digest [sha1.Size]byte, sig []byte) error {
	t.mu.RLock()
	key, ok := t.keys[entity]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("mobilecode: signing entity %q is not on the trust list", entity)
	}
	if !ed25519.Verify(key, signedMessage(id, version, digest), sig) {
		return fmt.Errorf("mobilecode: signature by %q over PAD %s/%s does not verify", entity, id, version)
	}
	return nil
}
