package mobilecode

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha1"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// moduleMagic identifies a packed PAD module on the wire and in CDN
// storage.
var moduleMagic = []byte("FMC1")

// Payload is the executable content of a PAD module: the encode and
// decode programs plus configuration parameters consumed by the host
// functions (block sizes, chunker settings, compression level, ...).
type Payload struct {
	Protocol string            `json:"protocol"`
	Encode   []byte            `json:"encode"` // Program.MarshalBinary output
	Decode   []byte            `json:"decode"`
	Params   map[string]string `json:"params,omitempty"`
}

// Module is a packaged, signed PAD: the mobile-code unit distributed
// through the CDN.
type Module struct {
	ID      string
	Version string
	Entity  string // signing entity
	Payload []byte // JSON-encoded Payload
	Digest  [sha1.Size]byte
	Sig     []byte
}

// NewModule packages a payload into a signed module.
func NewModule(id, version string, p Payload, signer *Signer) (*Module, error) {
	if id == "" || version == "" {
		return nil, fmt.Errorf("mobilecode: module needs id and version, got %q/%q", id, version)
	}
	if signer == nil {
		return nil, errors.New("mobilecode: module needs a signer")
	}
	if p.Protocol == "" {
		return nil, errors.New("mobilecode: payload needs a protocol name")
	}
	if _, err := UnmarshalProgram(p.Encode); err != nil {
		return nil, fmt.Errorf("mobilecode: payload encode program: %w", err)
	}
	if _, err := UnmarshalProgram(p.Decode); err != nil {
		return nil, fmt.Errorf("mobilecode: payload decode program: %w", err)
	}
	raw, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: encoding payload: %w", err)
	}
	m := &Module{ID: id, Version: version, Entity: signer.Entity, Payload: raw}
	m.Digest = sha1.Sum(raw)
	m.Sig = signer.Sign(id, version, m.Digest)
	return m, nil
}

// DecodePayload parses the module's payload envelope.
func (m *Module) DecodePayload() (Payload, error) {
	var p Payload
	if err := json.Unmarshal(m.Payload, &p); err != nil {
		return Payload{}, fmt.Errorf("mobilecode: module %s payload corrupt: %w", m.ID, err)
	}
	return p, nil
}

// Size returns the packed wire size of the module, the PAD size used by
// the overhead model.
func (m *Module) Size() int64 {
	b, err := m.Pack()
	if err != nil {
		return 0
	}
	return int64(len(b))
}

// Pack serializes the module for CDN storage and transport:
//
//	"FMC1" | str id | str version | str entity |
//	bytes payload | digest (20B) | bytes signature
//
// where str/bytes are uvarint-length-prefixed.
func (m *Module) Pack() ([]byte, error) {
	if len(m.Sig) != ed25519.SignatureSize {
		return nil, fmt.Errorf("mobilecode: module %s has %d-byte signature, want %d", m.ID, len(m.Sig), ed25519.SignatureSize)
	}
	var out bytes.Buffer
	out.Write(moduleMagic)
	var tmp [binary.MaxVarintLen64]byte
	writeBytes := func(b []byte) {
		out.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(b)))])
		out.Write(b)
	}
	writeBytes([]byte(m.ID))
	writeBytes([]byte(m.Version))
	writeBytes([]byte(m.Entity))
	writeBytes(m.Payload)
	out.Write(m.Digest[:])
	writeBytes(m.Sig)
	return out.Bytes(), nil
}

// Unpack parses a packed module. It checks structure and the payload
// digest but NOT the signature — signature verification needs a trust
// list and belongs to the Loader.
func Unpack(data []byte) (*Module, error) {
	r := bytes.NewReader(data)
	magic := make([]byte, len(moduleMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, moduleMagic) {
		return nil, errors.New("mobilecode: not a PAD module (bad magic)")
	}
	readBytes := func(what string, max uint64) ([]byte, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("mobilecode: module %s length: %w", what, err)
		}
		if n > max {
			return nil, fmt.Errorf("mobilecode: module %s of %d bytes is unreasonable", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("mobilecode: module %s truncated: %w", what, err)
		}
		return b, nil
	}
	id, err := readBytes("id", 1024)
	if err != nil {
		return nil, err
	}
	version, err := readBytes("version", 1024)
	if err != nil {
		return nil, err
	}
	entity, err := readBytes("entity", 1024)
	if err != nil {
		return nil, err
	}
	payload, err := readBytes("payload", 64<<20)
	if err != nil {
		return nil, err
	}
	m := &Module{ID: string(id), Version: string(version), Entity: string(entity), Payload: payload}
	if _, err := io.ReadFull(r, m.Digest[:]); err != nil {
		return nil, fmt.Errorf("mobilecode: module digest truncated: %w", err)
	}
	if m.Sig, err = readBytes("signature", 1024); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("mobilecode: module has %d trailing bytes", r.Len())
	}
	if got := sha1.Sum(m.Payload); !DigestEqual(got, m.Digest) {
		return nil, fmt.Errorf("mobilecode: module %s payload digest mismatch (corrupted in transit?)", m.ID)
	}
	return m, nil
}
