package mobilecode

import (
	"errors"
	"fmt"

	"fractal/internal/codec"
)

// Loader performs the client-side deployment pipeline of Section 3.5:
// unpack the downloaded module, check the SHA-1 payload digest, verify the
// code signature against the trust list, then instantiate the programs in
// a sandboxed VM. The result is a DeployedPAD the application session can
// use as its protocol.
type Loader struct {
	trust   *TrustList
	sandbox Sandbox
	verify  VerifyFunc
}

// VerifyFunc is a static bytecode verifier run by Load on each program of
// a module after the digest and signature checks succeed and before the
// sandboxed VM is instantiated. role is "encode" or "decode"; hosts is the
// capability set the program will execute against. A non-nil error rejects
// the module — a verifier rejection is a security failure, exactly like a
// bad signature. internal/mobilecode/verify provides the implementation;
// the indirection keeps this package free of a dependency on its own
// subpackage.
type VerifyFunc func(role string, p Program, hosts []HostFunc, sb Sandbox) error

// NewLoader builds a loader. A nil trust list refuses every module.
func NewLoader(trust *TrustList, sb Sandbox) (*Loader, error) {
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	return &Loader{trust: trust, sandbox: sb}, nil
}

// SetVerifier installs a static bytecode verifier into the deployment
// pipeline. Production deploy paths (client hosts, the appserver's
// VM-composition fallback) install verify.LoaderVerifier(); a nil verifier
// restores the historical digest+signature-only pipeline.
func (l *Loader) SetVerifier(v VerifyFunc) { l.verify = v }

// DeployedPAD is an instantiated protocol adaptor: verified mobile code
// ready to encode/decode application content on this host. It is safe for
// concurrent use.
type DeployedPAD struct {
	module *Module
	proto  string
	vm     *VM
	enc    Program
	dec    Program
	chunks *codec.ChunkCache
}

// Load verifies and instantiates a packed module.
func (l *Loader) Load(packed []byte) (*DeployedPAD, error) {
	m, err := Unpack(packed)
	if err != nil {
		return nil, err
	}
	if l.trust == nil {
		return nil, fmt.Errorf("mobilecode: no trust list configured; refusing PAD %s", m.ID)
	}
	if err := l.trust.Verify(m.Entity, m.ID, m.Version, m.Digest, m.Sig); err != nil {
		return nil, err
	}
	p, err := m.DecodePayload()
	if err != nil {
		return nil, err
	}
	enc, err := UnmarshalProgram(p.Encode)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: PAD %s encode program: %w", m.ID, err)
	}
	dec, err := UnmarshalProgram(p.Decode)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: PAD %s decode program: %w", m.ID, err)
	}
	hosts, chunks, err := HostTableWithCache(p.Params)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: PAD %s: %w", m.ID, err)
	}
	if l.verify != nil {
		if err := l.verify("encode", enc, hosts, l.sandbox); err != nil {
			return nil, fmt.Errorf("mobilecode: PAD %s encode program: %w", m.ID, err)
		}
		if err := l.verify("decode", dec, hosts, l.sandbox); err != nil {
			return nil, fmt.Errorf("mobilecode: PAD %s decode program: %w", m.ID, err)
		}
	}
	vm, err := NewVM(hosts, l.sandbox)
	if err != nil {
		return nil, err
	}
	return &DeployedPAD{module: m, proto: p.Protocol, vm: vm, enc: enc, dec: dec, chunks: chunks}, nil
}

// ID returns the PAD's module identifier.
func (d *DeployedPAD) ID() string { return d.module.ID }

// Name returns the protocol name the PAD implements.
func (d *DeployedPAD) Name() string { return d.proto }

// Module returns the underlying verified module.
func (d *DeployedPAD) Module() *Module { return d.module }

// ChunkCacheStats reports the PAD's decode-side chunk-index cache counters
// (all zero for non-differencing protocols, which never touch it).
func (d *DeployedPAD) ChunkCacheStats() codec.ChunkCacheStats { return d.chunks.Stats() }

// run executes a program with the calling convention shared by both
// directions: the initial buffer stack is [a, b] (b on top) and the result
// is the top buffer of the final stack.
func (d *DeployedPAD) run(p Program, a, b []byte) ([]byte, error) {
	out, err := d.vm.Run(p, [][]byte{a, b})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, errors.New("mobilecode: PAD program left no result buffer")
	}
	return out[len(out)-1], nil
}

// Encode implements the server/sender direction: produce the wire payload
// for cur given the receiver holds old.
func (d *DeployedPAD) Encode(old, cur []byte) ([]byte, error) {
	return d.run(d.enc, old, cur)
}

// Decode implements the client/receiver direction: reconstruct cur from
// the payload and the held old version.
func (d *DeployedPAD) Decode(old, payload []byte) ([]byte, error) {
	return d.run(d.dec, old, payload)
}
