package mobilecode

import (
	"fmt"
	"math/rand"

	"fractal/internal/codec"
)

// BuiltinSpec describes one of the case-study PADs (Table 1 of the paper)
// ready to be assembled, packaged, and signed.
type BuiltinSpec struct {
	ID        string
	Protocol  string // protocol name; keys the overhead model and matrices
	Params    map[string]string
	EncodeSrc string
	DecodeSrc string
	// Cost is the reference-CPU cost model for protocols that have no
	// native codec implementation (pure VM compositions); zero means
	// "look the native codec up by Protocol".
	Cost codec.CostModel
	// LibBytes is the size of the bundled support library blob. The
	// paper's PADs are Java class objects of nontrivial size; the blob
	// stands in for that code so PAD download time behaves realistically
	// in the overhead model.
	LibBytes int
}

// BuiltinSpecs returns the four communication-optimization PADs of the
// case study. The encode program runs with buffer stack [old, cur] and
// leaves the wire payload on top; the decode program runs with
// [old, payload] and leaves the reconstructed content on top.
func BuiltinSpecs() []BuiltinSpec {
	return []BuiltinSpec{
		{
			ID:       "pad-direct",
			Protocol: codec.NameDirect,
			EncodeSrc: `
				; Direct sending: the payload is the content itself.
				CALL identity
				HALT`,
			DecodeSrc: `
				CALL identity
				HALT`,
			LibBytes: 2 * 1024,
		},
		{
			ID:       "pad-gzip",
			Protocol: codec.NameGzip,
			Params:   map[string]string{"gzip.level": "-1"},
			EncodeSrc: `
				; Compress the current content; the old version is unused.
				CALL gzip.encode
				HALT`,
			DecodeSrc: `
				CALL gzip.decode
				HALT`,
			LibBytes: 18 * 1024,
		},
		{
			ID:       "pad-bitmap",
			Protocol: codec.NameBitmap,
			Params:   map[string]string{"bitmap.block": "512"},
			EncodeSrc: `
				; Fixed-size blocking diff of (old, cur).
				CALL bitmap.encode
				HALT`,
			DecodeSrc: `
				CALL bitmap.decode
				HALT`,
			LibBytes: 26 * 1024,
		},
		{
			ID:       "pad-vary",
			Protocol: codec.NameVaryBlock,
			Params: map[string]string{
				"vary.min":      "256",
				"vary.max":      "4096",
				"vary.maskbits": "9",
			},
			EncodeSrc: `
				; Content-defined chunking diff of (old, cur).
				CALL vary.encode
				HALT`,
			DecodeSrc: `
				CALL vary.decode
				HALT`,
			LibBytes: 42 * 1024,
		},
	}
}

// RsyncSpec is the fix-sized blocking protocol of Rsync [50], not part of
// the paper's four-PAD case study but available for the dynamic-extension
// scenario: a fifth protocol added to a running deployment.
func RsyncSpec() BuiltinSpec {
	return BuiltinSpec{
		ID:       "pad-rsync",
		Protocol: codec.NameRsync,
		Params:   map[string]string{"rsync.block": "512"},
		EncodeSrc: `
			; Fix-sized blocking (rsync) diff of (old, cur).
			CALL rsync.encode
			HALT`,
		DecodeSrc: `
			CALL rsync.decode
			HALT`,
		LibBytes: 22 * 1024,
	}
}

// TranscoderSpecs returns the content-adaptation PADs of the Section 5
// extension: a full-fidelity rendition and a downscaled thumbnail
// rendition. Content adaptation is applied at the server; the client-side
// programs are identities because the adapted content is exactly what the
// client consumes. Protocol names match the transcode package registry.
func TranscoderSpecs() []BuiltinSpec {
	identity := `
		CALL identity
		HALT`
	return []BuiltinSpec{
		{
			ID:        "pad-full",
			Protocol:  "full",
			EncodeSrc: identity,
			DecodeSrc: identity,
			LibBytes:  1024,
		},
		{
			ID:        "pad-thumb",
			Protocol:  "thumbnail",
			EncodeSrc: identity,
			DecodeSrc: identity,
			LibBytes:  6 * 1024,
		},
	}
}

// CascadeSpec composes two primitives into a protocol that exists in no
// native codec: the content is differenced with content-defined chunking
// and the resulting delta stream is then gzip-compressed (literal chunks
// are themselves compressible). This is what mobile code buys the
// framework — new protocol logic assembled from deployed primitives
// without shipping new native code.
func CascadeSpec() BuiltinSpec {
	return BuiltinSpec{
		ID:       "pad-cascade",
		Protocol: "cascade",
		// Roughly the vary server cost plus gzip over the (small) delta,
		// and both decode stages on the client.
		Cost: codec.CostModel{ServerNsPerByte: 19100, ClientNsPerByte: 2400},
		Params: map[string]string{
			"vary.min": "256", "vary.max": "4096", "vary.maskbits": "9",
			"gzip.level": "6",
		},
		EncodeSrc: `
			; stack: [old, cur] -> vary delta -> gzip-compressed delta
			CALL vary.encode
			CALL gzip.encode
			HALT`,
		DecodeSrc: `
			; stack: [old, payload] -> decompress (arity 1 leaves old below)
			; -> resolve the delta against old
			CALL gzip.decode
			CALL vary.decode
			HALT`,
		LibBytes: 4 * 1024,
	}
}

// BuildModule assembles, packages, and signs one spec at a version.
func BuildModule(spec BuiltinSpec, version string, signer *Signer) (*Module, error) {
	enc, err := Assemble(spec.EncodeSrc)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: %s encode source: %w", spec.ID, err)
	}
	dec, err := Assemble(spec.DecodeSrc)
	if err != nil {
		return nil, fmt.Errorf("mobilecode: %s decode source: %w", spec.ID, err)
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		return nil, err
	}
	params := map[string]string{}
	for k, v := range spec.Params {
		params[k] = v
	}
	if spec.LibBytes > 0 {
		params["lib"] = string(libBlob(rand.New(rand.NewSource(libSeed(spec.ID))), spec.LibBytes))
	}
	return NewModule(spec.ID, version, Payload{
		Protocol: spec.Protocol,
		Encode:   encBin,
		Decode:   decBin,
		Params:   params,
	}, signer)
}

// BuildBuiltins packages all four case-study PADs.
func BuildBuiltins(version string, signer *Signer) ([]*Module, error) {
	specs := BuiltinSpecs()
	out := make([]*Module, 0, len(specs))
	for _, s := range specs {
		m, err := BuildModule(s, version, signer)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// libSeed derives a PAD's deterministic blob seed from its identifier, so
// every build of the same module carries byte-identical support-library
// bytes (the module digest depends on them).
func libSeed(id string) int64 {
	var seed int64
	for _, c := range id {
		seed = seed*131 + int64(c)
	}
	return seed
}

// libBlob synthesizes a support-library blob of printable bytes
// (JSON-safe) for a PAD from an explicit seeded generator.
func libBlob(rng *rand.Rand, n int) []byte {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return b
}
