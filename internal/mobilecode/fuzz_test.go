package mobilecode

import "testing"

// FuzzUnpack hardens module unpacking: arbitrary bytes must be rejected
// cleanly (no panic), and anything accepted must satisfy the digest
// invariant by construction.
func FuzzUnpack(f *testing.F) {
	signer, err := NewSigner("fuzz")
	if err != nil {
		f.Fatal(err)
	}
	bin, err := MustAssemble("CALL identity\nHALT").MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	m, err := NewModule("pad-fuzz", "1", Payload{Protocol: "direct", Encode: bin, Decode: bin}, signer)
	if err != nil {
		f.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(packed)
	f.Add([]byte("FMC1junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := Unpack(data)
		if err != nil {
			return
		}
		if u.ID == "" {
			t.Fatal("unpacked module with empty id")
		}
	})
}

// FuzzUnmarshalProgram hardens program decoding.
func FuzzUnmarshalProgram(f *testing.F) {
	bin, err := MustAssemble("PUSH 5\nJZ done\nCALL identity\ndone:\nHALT").MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bin)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalProgram(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder produced invalid program: %v", err)
		}
	})
}
