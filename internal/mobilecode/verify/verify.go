// Package verify is Fractal's static bytecode verifier: the Go-era
// analogue of the JVM bytecode verifier the paper's Java substrate got for
// free. mobilecode.Program.Validate only checks structure (known opcodes,
// in-range jump targets); a signed-but-buggy PAD can still fault at run
// time with a stack underflow, an unknown host symbol, or a missing HALT.
// This package proves those faults absent *before* deployment by abstract
// interpretation over the program's control-flow graph:
//
//   - Stack safety. Per-instruction dataflow of the int-stack and
//     buffer-stack heights in an interval abstraction, merged at join
//     points, so every path into an instruction agrees the stacks are deep
//     enough for its pops and shallow enough for its pushes to respect the
//     sandbox depth limit.
//   - Control safety. Every instruction is reachable (dead code is
//     rejected), execution cannot fall off the end of the program, and
//     HALT is reachable from every reachable instruction.
//   - Capability safety. Every CALL resolves inside the declared
//     capability set; a PAD that calls outside its manifest's host
//     functions is rejected at deploy time, not at run time mid-stream.
//   - Cost safety. Loop-free programs get an exact worst-case instruction
//     bound checked against the sandbox budget. Programs with cycles are
//     rejected unless the policy allows loops AND every back edge that
//     closes a cycle is a conditional jump — the guard the VM's
//     per-instruction budget counter checks on every trip — in which case
//     the sandbox instruction budget itself is the (inexact) bound.
//
// The soundness contract, pinned by a differential fuzz harness: a program
// this package accepts never faults in the VM with a static-class error
// (mobilecode.ErrIntUnderflow, ErrBufUnderflow, ErrUnknownHost, ErrPCRange,
// or ErrStackDepth) when run under the verified sandbox with the verified
// input count against a host table matching the capability set.
// Data-dependent failures — slice bounds, host-function errors, memory and
// instruction budget exhaustion — remain sandbox matters by design.
package verify

import (
	"errors"
	"fmt"
	"sort"

	"fractal/internal/mobilecode"
)

// Capability declares one host function a program may CALL: how many
// buffers it pops and how many it pushes on success.
type Capability struct {
	Arity   int
	Results int
}

// CapSet is a declared capability manifest: the host symbols a program is
// allowed to call, with their stack effects.
type CapSet map[string]Capability

// CapsForHosts derives the capability set from a host table. Host
// functions with an undeclared result count (Results == 0) are excluded —
// the verifier cannot bound the buffer stack across a call whose push
// count it does not know, so such symbols are uncallable from verified
// programs. The standard table (mobilecode.HostTable) declares every
// primitive.
func CapsForHosts(hosts []mobilecode.HostFunc) CapSet {
	caps := make(CapSet, len(hosts))
	for _, h := range hosts {
		if h.Results <= 0 {
			continue
		}
		caps[h.Name] = Capability{Arity: h.Arity, Results: h.Results}
	}
	return caps
}

// Config is one verification policy.
type Config struct {
	// Caps is the declared capability manifest CALLs must resolve in.
	Caps CapSet
	// Sandbox supplies the budgets the static bounds are checked against.
	Sandbox mobilecode.Sandbox
	// Inputs is the initial buffer-stack height the program runs with.
	// The PAD calling convention is 2: [old, cur] for encode, [old,
	// payload] for decode.
	Inputs int
	// MinResults is the buffer-stack height every HALT must guarantee.
	// The PAD calling convention takes the top buffer as the result, so
	// deployment requires 1.
	MinResults int
	// AllowLoops accepts programs with cycles when every back edge that
	// closes a cycle is conditional (JZ) and HALT stays reachable; their
	// cost bound is the sandbox instruction budget the VM enforces at each
	// trip. When false any cycle is rejected and every accepted program
	// has an exact static cost.
	AllowLoops bool
}

// DeployConfig is the policy the deployment pipeline enforces on PAD
// programs: the capability manifest of the module's own host table, the
// deploying sandbox, and the [old, x] -> result calling convention.
func DeployConfig(hosts []mobilecode.HostFunc, sb mobilecode.Sandbox) Config {
	return Config{
		Caps:       CapsForHosts(hosts),
		Sandbox:    sb,
		Inputs:     2,
		MinResults: 1,
		AllowLoops: true,
	}
}

// Report is the proof summary for an accepted program.
type Report struct {
	// Instructions is the program length.
	Instructions int
	// MaxCost bounds the instructions one execution retires. Exact for
	// loop-free programs; for accepted cyclic programs it is the sandbox
	// instruction budget.
	MaxCost int64
	// ExactCost reports whether MaxCost is the exact loop-free bound.
	ExactCost bool
	// MaxIntDepth and MaxBufDepth bound the two stacks over every path.
	MaxIntDepth int
	MaxBufDepth int
	// Loops reports whether the program has (accepted, guarded) cycles.
	Loops bool
	// Calls lists the host symbols the program resolves, sorted.
	Calls []string
}

// Verification failure classes, matchable with errors.Is against the Kind
// of a *verify.Error.
var (
	ErrMalformed      = errors.New("malformed program")
	ErrIntUnderflow   = errors.New("int stack may underflow")
	ErrBufUnderflow   = errors.New("buffer stack may underflow")
	ErrStackDepth     = errors.New("stack may exceed the sandbox depth limit")
	ErrUndeclaredCall = errors.New("CALL outside the declared capability set")
	ErrDeadCode       = errors.New("unreachable instruction")
	ErrNoHalt         = errors.New("HALT is unreachable from this instruction")
	ErrFallsOff       = errors.New("execution can fall off the end of the program")
	ErrLoop           = errors.New("cycle in a loop-free policy")
	ErrUnboundedLoop  = errors.New("unconditional back edge closes an unbudgeted cycle")
	ErrCost           = errors.New("worst-case cost exceeds the sandbox instruction budget")
	ErrNoResult       = errors.New("HALT may be reached without the required result buffers")
	ErrConfig         = errors.New("unusable verification config")
)

// Error is a typed verification rejection naming the offending
// instruction. PC is -1 for program-wide failures (empty program,
// unusable config).
type Error struct {
	PC     int
	Op     mobilecode.Op
	Kind   error
	Detail string
}

// Error implements error.
func (e *Error) Error() string {
	suffix := ""
	if e.Detail != "" {
		suffix = ": " + e.Detail
	}
	if e.PC < 0 {
		return fmt.Sprintf("verify: %v%s", e.Kind, suffix)
	}
	return fmt.Sprintf("verify: instruction %d (%s): %v%s", e.PC, e.Op, e.Kind, suffix)
}

// Unwrap exposes the failure class for errors.Is.
func (e *Error) Unwrap() error { return e.Kind }

// errAt builds a rejection at an instruction.
func errAt(p mobilecode.Program, pc int, kind error, format string, args ...interface{}) *Error {
	e := &Error{PC: pc, Kind: kind, Detail: fmt.Sprintf(format, args...)}
	if pc >= 0 && pc < len(p) {
		e.Op = p[pc].Op
	}
	return e
}

// interval is the abstract height of one stack: every concrete execution
// reaching the instruction has lo <= height <= hi.
type interval struct{ lo, hi int }

// absState is the abstract machine state at an instruction entry.
type absState struct{ ints, bufs interval }

// merge joins two states (interval union); ok reports whether the
// receiver changed.
func (s *absState) merge(o absState) bool {
	changed := false
	if o.ints.lo < s.ints.lo {
		s.ints.lo, changed = o.ints.lo, true
	}
	if o.ints.hi > s.ints.hi {
		s.ints.hi, changed = o.ints.hi, true
	}
	if o.bufs.lo < s.bufs.lo {
		s.bufs.lo, changed = o.bufs.lo, true
	}
	if o.bufs.hi > s.bufs.hi {
		s.bufs.hi, changed = o.bufs.hi, true
	}
	return changed
}

// effect is an instruction's stack effect: pops are checked against the
// abstract lower bound, pushes against the sandbox depth limit.
type effect struct{ intPop, intPush, bufPop, bufPush int }

// effectOf resolves an instruction's stack effect under the capability
// set. CALL resolution failures surface as ErrUndeclaredCall.
func effectOf(p mobilecode.Program, pc int, caps CapSet) (effect, *Error) {
	switch in := p[pc]; in.Op {
	case mobilecode.OpNop, mobilecode.OpHalt, mobilecode.OpJmp:
		return effect{}, nil
	case mobilecode.OpPush:
		return effect{intPush: 1}, nil
	case mobilecode.OpPop, mobilecode.OpJz:
		return effect{intPop: 1}, nil
	case mobilecode.OpDupB:
		return effect{bufPop: 1, bufPush: 2}, nil
	case mobilecode.OpSwapB:
		return effect{bufPop: 2, bufPush: 2}, nil
	case mobilecode.OpDropB:
		return effect{bufPop: 1}, nil
	case mobilecode.OpSize:
		return effect{bufPop: 1, bufPush: 1, intPush: 1}, nil
	case mobilecode.OpConcatB:
		return effect{bufPop: 2, bufPush: 1}, nil
	case mobilecode.OpSliceB:
		return effect{intPop: 2, bufPop: 1, bufPush: 1}, nil
	case mobilecode.OpLt, mobilecode.OpEq:
		return effect{intPop: 2, intPush: 1}, nil
	case mobilecode.OpCall:
		cap, ok := caps[in.Sym]
		if !ok {
			return effect{}, errAt(p, pc, ErrUndeclaredCall, "symbol %q is not in the %d-symbol manifest", in.Sym, len(caps))
		}
		return effect{bufPop: cap.Arity, bufPush: cap.Results}, nil
	default:
		return effect{}, errAt(p, pc, ErrMalformed, "unknown opcode %d", uint8(in.Op))
	}
}

// Program statically verifies one program under a policy, returning the
// proof summary or a typed rejection naming the offending instruction.
func Program(p mobilecode.Program, cfg Config) (*Report, error) {
	if err := cfg.Sandbox.Validate(); err != nil {
		return nil, &Error{PC: -1, Kind: ErrConfig, Detail: err.Error()}
	}
	if cfg.Inputs < 0 || cfg.MinResults < 0 {
		return nil, &Error{PC: -1, Kind: ErrConfig, Detail: fmt.Sprintf("negative inputs (%d) or min results (%d)", cfg.Inputs, cfg.MinResults)}
	}
	if cfg.Inputs > cfg.Sandbox.MaxStackDepth {
		return nil, &Error{PC: -1, Kind: ErrConfig, Detail: fmt.Sprintf("%d input buffers exceed the sandbox depth limit %d", cfg.Inputs, cfg.Sandbox.MaxStackDepth)}
	}
	if err := p.Validate(); err != nil {
		return nil, &Error{PC: -1, Kind: ErrMalformed, Detail: err.Error()}
	}

	succs, fallsOff := successors(p)

	// Forward reachability from the entry: dead code is rejected — an
	// instruction no path executes is either a truncated control transfer
	// or payload smuggled past review, and neither belongs in signed
	// mobile code.
	reached := reach(len(p), []int{0}, func(u int) []int { return succs[u] })
	for pc := range p {
		if !reached[pc] {
			return nil, errAt(p, pc, ErrDeadCode, "no path from the entry executes it")
		}
	}
	for pc := range p {
		if fallsOff[pc] {
			return nil, errAt(p, pc, ErrFallsOff, "the instruction after it would be %d of %d", pc+1, len(p))
		}
	}

	// Every reachable instruction must be able to reach a HALT: a node
	// that cannot is a guaranteed infinite loop (or a fault) at run time.
	preds := invert(len(p), succs)
	var halts []int
	for pc := range p {
		if p[pc].Op == mobilecode.OpHalt {
			halts = append(halts, pc)
		}
	}
	toHalt := reach(len(p), halts, func(u int) []int { return preds[u] })
	for pc := range p {
		if !toHalt[pc] {
			return nil, errAt(p, pc, ErrNoHalt, "every continuation loops forever")
		}
	}

	report := &Report{Instructions: len(p)}

	// Cycle analysis: DFS classifies the edges that close cycles. A
	// loop-free program gets an exact longest-path cost below; a cyclic
	// one is rejected outright under a loop-free policy, and otherwise
	// must close every cycle with a conditional jump — the guard the VM's
	// per-instruction budget counter re-checks on every trip, which is
	// what bounds the loop at run time.
	cycleEdges, order := dfs(len(p), succs)
	report.Loops = len(cycleEdges) > 0
	if report.Loops {
		if !cfg.AllowLoops {
			u := cycleEdges[0].from
			return nil, errAt(p, u, ErrLoop, "back edge to instruction %d under a loop-free policy", cycleEdges[0].to)
		}
		for _, e := range cycleEdges {
			if p[e.from].Op != mobilecode.OpJz {
				return nil, errAt(p, e.from, ErrUnboundedLoop, "back edge to instruction %d must be a conditional jump", e.to)
			}
		}
		report.MaxCost = cfg.Sandbox.MaxInstructions
	} else {
		report.MaxCost = longestPath(order, succs)
		report.ExactCost = true
		if report.MaxCost > cfg.Sandbox.MaxInstructions {
			return nil, errAt(p, 0, ErrCost, "exact worst case of %d instructions exceeds budget %d", report.MaxCost, cfg.Sandbox.MaxInstructions)
		}
	}

	// Abstract interpretation of stack heights. The lattice is finite —
	// lower bounds only fall (floor 0, enforced by the underflow check)
	// and upper bounds only rise (ceiling MaxStackDepth, enforced by the
	// depth check) — so the worklist reaches a fixpoint without widening;
	// the update budget below is a pure defence against a pathological
	// sandbox with an astronomically deep stack limit.
	states := make([]absState, len(p))
	seen := make([]bool, len(p))
	states[0] = absState{ints: interval{0, 0}, bufs: interval{cfg.Inputs, cfg.Inputs}}
	seen[0] = true
	work := []int{0}
	updates := 0
	maxUpdates := 64*len(p) + 4096
	calls := map[string]bool{}
	report.MaxIntDepth, report.MaxBufDepth = 0, cfg.Inputs
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		st := states[pc]
		eff, verr := effectOf(p, pc, cfg.Caps)
		if verr != nil {
			return nil, verr
		}
		in := p[pc]
		if in.Op == mobilecode.OpCall {
			calls[in.Sym] = true
		}
		if st.ints.lo < eff.intPop {
			return nil, errAt(p, pc, ErrIntUnderflow, "needs %d ints, a path arrives with as few as %d", eff.intPop, st.ints.lo)
		}
		if st.bufs.lo < eff.bufPop {
			return nil, errAt(p, pc, ErrBufUnderflow, "needs %d buffers, a path arrives with as few as %d", eff.bufPop, st.bufs.lo)
		}
		out := absState{
			ints: interval{st.ints.lo - eff.intPop + eff.intPush, st.ints.hi - eff.intPop + eff.intPush},
			bufs: interval{st.bufs.lo - eff.bufPop + eff.bufPush, st.bufs.hi - eff.bufPop + eff.bufPush},
		}
		if out.ints.hi > cfg.Sandbox.MaxStackDepth {
			return nil, errAt(p, pc, ErrStackDepth, "int stack may reach %d of limit %d", out.ints.hi, cfg.Sandbox.MaxStackDepth)
		}
		if out.bufs.hi > cfg.Sandbox.MaxStackDepth {
			return nil, errAt(p, pc, ErrStackDepth, "buffer stack may reach %d of limit %d", out.bufs.hi, cfg.Sandbox.MaxStackDepth)
		}
		if out.ints.hi > report.MaxIntDepth {
			report.MaxIntDepth = out.ints.hi
		}
		if out.bufs.hi > report.MaxBufDepth {
			report.MaxBufDepth = out.bufs.hi
		}
		if in.Op == mobilecode.OpHalt {
			if st.bufs.lo < cfg.MinResults {
				return nil, errAt(p, pc, ErrNoResult, "a path halts with as few as %d of %d required buffers", st.bufs.lo, cfg.MinResults)
			}
			continue
		}
		for _, nxt := range succs[pc] {
			if !seen[nxt] {
				seen[nxt] = true
				states[nxt] = out
				work = append(work, nxt)
				continue
			}
			if states[nxt].merge(out) {
				updates++
				if updates > maxUpdates {
					return nil, errAt(p, nxt, ErrStackDepth, "stack-height analysis diverged after %d refinements", updates)
				}
				work = append(work, nxt)
			}
		}
	}

	for sym := range calls {
		report.Calls = append(report.Calls, sym)
	}
	sort.Strings(report.Calls)
	return report, nil
}

// successors builds the CFG edge lists; fallsOff marks instructions whose
// fallthrough successor would be past the end of the program.
func successors(p mobilecode.Program) (succs [][]int, fallsOff []bool) {
	succs = make([][]int, len(p))
	fallsOff = make([]bool, len(p))
	for pc, in := range p {
		switch in.Op {
		case mobilecode.OpHalt:
		case mobilecode.OpJmp:
			succs[pc] = []int{int(in.Arg)}
		case mobilecode.OpJz:
			if pc+1 >= len(p) {
				fallsOff[pc] = true
				succs[pc] = []int{int(in.Arg)}
				continue
			}
			if int(in.Arg) == pc+1 {
				succs[pc] = []int{pc + 1}
			} else {
				succs[pc] = []int{int(in.Arg), pc + 1}
			}
		default:
			if pc+1 >= len(p) {
				fallsOff[pc] = true
				continue
			}
			succs[pc] = []int{pc + 1}
		}
	}
	return succs, fallsOff
}

// reach computes the nodes reachable from the roots over next().
func reach(n int, roots []int, next func(int) []int) []bool {
	seen := make([]bool, n)
	stack := make([]int, 0, len(roots))
	for _, r := range roots {
		if r >= 0 && r < n && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range next(u) {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// invert reverses an adjacency list.
func invert(n int, succs [][]int) [][]int {
	preds := make([][]int, n)
	for u, vs := range succs {
		for _, v := range vs {
			preds[v] = append(preds[v], u)
		}
	}
	return preds
}

// cfgEdge is one control-flow edge.
type cfgEdge struct{ from, to int }

// dfs runs an iterative depth-first search from the entry, returning the
// edges that close cycles (targets still on the DFS stack) and, when none
// exist, a reverse-topological finish order of the visited nodes.
func dfs(n int, succs [][]int) (cycleEdges []cfgEdge, finishOrder []int) {
	const (
		white = iota
		gray
		black
	)
	color := make([]int, n)
	type frame struct{ node, next int }
	var stack []frame
	color[0] = gray
	stack = append(stack, frame{node: 0})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succs[f.node]) {
			v := succs[f.node][f.next]
			f.next++
			switch color[v] {
			case white:
				color[v] = gray
				stack = append(stack, frame{node: v})
			case gray:
				cycleEdges = append(cycleEdges, cfgEdge{from: f.node, to: v})
			}
			continue
		}
		color[f.node] = black
		finishOrder = append(finishOrder, f.node)
		stack = stack[:len(stack)-1]
	}
	return cycleEdges, finishOrder
}

// longestPath computes the exact worst-case instruction count of a
// loop-free program: the longest entry-to-HALT path in the DAG, walking
// nodes in the DFS finish order (children finish before parents).
func longestPath(finishOrder []int, succs [][]int) int64 {
	longest := map[int]int64{}
	for _, u := range finishOrder {
		best := int64(0)
		for _, v := range succs[u] {
			if l := longest[v]; l > best {
				best = l
			}
		}
		longest[u] = best + 1
	}
	return longest[0]
}

// LoaderVerifier returns the mobilecode.VerifyFunc production deploy paths
// install on their Loader: each program of a module is verified under the
// module's own host-table manifest and the deploying sandbox, with the
// [old, x] -> result calling convention.
func LoaderVerifier() mobilecode.VerifyFunc {
	return func(role string, p mobilecode.Program, hosts []mobilecode.HostFunc, sb mobilecode.Sandbox) error {
		if _, err := Program(p, DeployConfig(hosts, sb)); err != nil {
			return fmt.Errorf("verifier rejected %s program: %w", role, err)
		}
		return nil
	}
}

// ModuleReport carries the per-program proofs of one verified module.
type ModuleReport struct {
	ID      string
	Version string
	Encode  *Report
	Decode  *Report
}

// Module statically verifies both programs of a module against the
// capability manifest its own params configure, under the given sandbox.
// It performs no signature check — provenance is the Loader's business;
// this is the safety half of the deploy gate.
func Module(m *mobilecode.Module, sb mobilecode.Sandbox) (*ModuleReport, error) {
	payload, err := m.DecodePayload()
	if err != nil {
		return nil, err
	}
	hosts, err := mobilecode.HostTable(payload.Params)
	if err != nil {
		return nil, fmt.Errorf("verify: module %s host table: %w", m.ID, err)
	}
	cfg := DeployConfig(hosts, sb)
	rep := &ModuleReport{ID: m.ID, Version: m.Version}
	enc, err := mobilecode.UnmarshalProgram(payload.Encode)
	if err != nil {
		return nil, fmt.Errorf("verify: module %s encode program: %w", m.ID, err)
	}
	if rep.Encode, err = Program(enc, cfg); err != nil {
		return nil, fmt.Errorf("verify: module %s encode program: %w", m.ID, err)
	}
	dec, err := mobilecode.UnmarshalProgram(payload.Decode)
	if err != nil {
		return nil, fmt.Errorf("verify: module %s decode program: %w", m.ID, err)
	}
	if rep.Decode, err = Program(dec, cfg); err != nil {
		return nil, fmt.Errorf("verify: module %s decode program: %w", m.ID, err)
	}
	return rep, nil
}

// Packed unpacks a packed module (structure and payload digest checks)
// and verifies it under the sandbox: the gate registration paths apply to
// module bytes before metadata may enter a PAT.
func Packed(data []byte, sb mobilecode.Sandbox) (*ModuleReport, error) {
	m, err := mobilecode.Unpack(data)
	if err != nil {
		return nil, err
	}
	return Module(m, sb)
}
