package verify

import (
	"errors"
	"testing"

	"fractal/internal/mobilecode"
)

// deployCfg is the standard test policy: the full builtin host table, a
// small sandbox, and the PAD calling convention.
func deployCfg(t *testing.T, sb mobilecode.Sandbox) Config {
	t.Helper()
	hosts, err := mobilecode.HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	return DeployConfig(hosts, sb)
}

func smallSandbox() mobilecode.Sandbox {
	return mobilecode.Sandbox{MaxInstructions: 1 << 12, MaxBufferBytes: 1 << 20, MaxStackDepth: 8}
}

func TestBuiltinModulesVerify(t *testing.T) {
	signer, err := mobilecode.NewSigner("test-op")
	if err != nil {
		t.Fatal(err)
	}
	specs := mobilecode.BuiltinSpecs()
	specs = append(specs, mobilecode.RsyncSpec(), mobilecode.CascadeSpec())
	specs = append(specs, mobilecode.TranscoderSpecs()...)
	for _, spec := range specs {
		m, err := mobilecode.BuildModule(spec, "1.0", signer)
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		rep, err := Module(m, mobilecode.DefaultSandbox())
		if err != nil {
			t.Fatalf("%s: builtin PAD rejected: %v", spec.ID, err)
		}
		for role, r := range map[string]*Report{"encode": rep.Encode, "decode": rep.Decode} {
			if !r.ExactCost {
				t.Errorf("%s %s: straight-line builtin did not get an exact cost", spec.ID, role)
			}
			if len(r.Calls) == 0 {
				t.Errorf("%s %s: no host calls resolved", spec.ID, role)
			}
			if r.Loops {
				t.Errorf("%s %s: builtin reported loops", spec.ID, role)
			}
		}
	}
}

func TestCraftedBadProgramsRejectedWithTypedErrors(t *testing.T) {
	I := func(op mobilecode.Op, arg int64) mobilecode.Instr { return mobilecode.Instr{Op: op, Arg: arg} }
	cases := []struct {
		name   string
		prog   mobilecode.Program
		cfg    func(Config) Config
		kind   error
		wantPC int
	}{
		{
			name:   "int underflow",
			prog:   mobilecode.Program{I(mobilecode.OpPop, 0), I(mobilecode.OpHalt, 0)},
			kind:   ErrIntUnderflow,
			wantPC: 0,
		},
		{
			name: "int underflow on a join path",
			// Only the fall-through path pushes before EQ pops twice.
			prog: mobilecode.Program{
				I(mobilecode.OpPush, 1),
				I(mobilecode.OpJz, 4),
				I(mobilecode.OpPush, 2),
				I(mobilecode.OpPush, 3),
				I(mobilecode.OpEq, 0),
				I(mobilecode.OpHalt, 0),
			},
			kind:   ErrIntUnderflow,
			wantPC: 4,
		},
		{
			name: "buffer underflow",
			prog: mobilecode.Program{
				I(mobilecode.OpDropB, 0), I(mobilecode.OpDropB, 0),
				I(mobilecode.OpDropB, 0), I(mobilecode.OpHalt, 0),
			},
			kind:   ErrBufUnderflow,
			wantPC: 2,
		},
		{
			name: "undeclared CALL",
			prog: mobilecode.Program{
				{Op: mobilecode.OpCall, Sym: "evil.exfiltrate"},
				I(mobilecode.OpHalt, 0),
			},
			kind:   ErrUndeclaredCall,
			wantPC: 0,
		},
		{
			name: "dead code",
			prog: mobilecode.Program{
				I(mobilecode.OpJmp, 2),
				I(mobilecode.OpNop, 0),
				I(mobilecode.OpHalt, 0),
			},
			kind:   ErrDeadCode,
			wantPC: 1,
		},
		{
			name: "unbounded loop",
			// The cycle 0-1-2 escapes through JZ at 1, but the edge that
			// closes it (2 -> 0) is unconditional.
			prog: mobilecode.Program{
				I(mobilecode.OpPush, 1),
				I(mobilecode.OpJz, 3),
				I(mobilecode.OpJmp, 0),
				I(mobilecode.OpHalt, 0),
			},
			kind:   ErrUnboundedLoop,
			wantPC: 2,
		},
		{
			name: "no reachable HALT",
			prog: mobilecode.Program{
				I(mobilecode.OpJmp, 1),
				I(mobilecode.OpJmp, 0),
			},
			kind:   ErrNoHalt,
			wantPC: 0,
		},
		{
			name:   "falls off the end",
			prog:   mobilecode.Program{I(mobilecode.OpNop, 0)},
			kind:   ErrFallsOff,
			wantPC: 0,
		},
		{
			name: "halts without a result",
			prog: mobilecode.Program{
				I(mobilecode.OpDropB, 0), I(mobilecode.OpDropB, 0), I(mobilecode.OpHalt, 0),
			},
			kind:   ErrNoResult,
			wantPC: 2,
		},
		{
			name: "stack depth",
			prog: mobilecode.Program{
				I(mobilecode.OpDupB, 0), I(mobilecode.OpDupB, 0), I(mobilecode.OpDupB, 0),
				I(mobilecode.OpDupB, 0), I(mobilecode.OpDupB, 0), I(mobilecode.OpDupB, 0),
				I(mobilecode.OpDupB, 0), I(mobilecode.OpHalt, 0),
			},
			kind:   ErrStackDepth,
			wantPC: 6,
		},
		{
			name: "cost over budget",
			prog: mobilecode.Program{
				I(mobilecode.OpNop, 0), I(mobilecode.OpNop, 0), I(mobilecode.OpNop, 0),
				I(mobilecode.OpNop, 0), I(mobilecode.OpHalt, 0),
			},
			cfg: func(c Config) Config {
				c.Sandbox.MaxInstructions = 4
				return c
			},
			kind:   ErrCost,
			wantPC: 0,
		},
		{
			name: "loop under a loop-free policy",
			prog: mobilecode.Program{
				I(mobilecode.OpPush, 1),
				I(mobilecode.OpJz, 0),
				I(mobilecode.OpHalt, 0),
			},
			cfg: func(c Config) Config {
				c.AllowLoops = false
				return c
			},
			kind:   ErrLoop,
			wantPC: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := deployCfg(t, smallSandbox())
			if tc.cfg != nil {
				cfg = tc.cfg(cfg)
			}
			_, err := Program(tc.prog, cfg)
			if err == nil {
				t.Fatal("verifier accepted the program")
			}
			var verr *Error
			if !errors.As(err, &verr) {
				t.Fatalf("rejection is not a *verify.Error: %v", err)
			}
			if !errors.Is(err, tc.kind) {
				t.Fatalf("kind = %v, want %v (full: %v)", verr.Kind, tc.kind, err)
			}
			if verr.PC != tc.wantPC {
				t.Fatalf("rejection names instruction %d, want %d (full: %v)", verr.PC, tc.wantPC, err)
			}
			if verr.PC >= 0 && verr.Op != tc.prog[verr.PC].Op {
				t.Fatalf("rejection names op %s, instruction %d is %s", verr.Op, verr.PC, tc.prog[verr.PC].Op)
			}
		})
	}
}

func TestGuardedLoopAcceptedAndRuns(t *testing.T) {
	cfg := deployCfg(t, smallSandbox())
	// A cycle closed by a conditional jump: the verifier accepts it and
	// falls back to the sandbox budget as the cost bound.
	cyclic, err := mobilecode.Assemble(`
		PUSH 4
	loop:
		DUPB
		DROPB
		PUSH 0
		JZ loop     ; always taken at run time: spins until the budget
		HALT`)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Program(cyclic, cfg)
	if err != nil {
		t.Fatalf("conditionally closed cycle rejected: %v", err)
	}
	if !rep2.Loops || rep2.ExactCost {
		t.Fatalf("cycle not detected: %+v", rep2)
	}
	if rep2.MaxCost != cfg.Sandbox.MaxInstructions {
		t.Fatalf("cyclic cost bound = %d, want the sandbox budget %d", rep2.MaxCost, cfg.Sandbox.MaxInstructions)
	}
	// The VM's budget is the back-edge check the verifier relied on: the
	// program spins but fails with budget exhaustion, not a static fault.
	hosts, err := mobilecode.HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := mobilecode.NewVM(hosts, smallSandbox())
	if err != nil {
		t.Fatal(err)
	}
	_, err = vm.Run(cyclic, [][]byte{[]byte("old"), []byte("cur")})
	if !errors.Is(err, mobilecode.ErrInstructionBudget) {
		t.Fatalf("spinning program failed with %v, want the instruction budget", err)
	}
}

func TestReportBoundsMatchStraightLine(t *testing.T) {
	p, err := mobilecode.Assemble(`
		CALL vary.encode
		CALL gzip.encode
		HALT`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Program(p, deployCfg(t, smallSandbox()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxCost != 3 || !rep.ExactCost {
		t.Fatalf("cost = %d (exact %v), want exactly 3", rep.MaxCost, rep.ExactCost)
	}
	if rep.MaxBufDepth != 2 {
		t.Fatalf("buffer depth bound = %d, want 2", rep.MaxBufDepth)
	}
	if len(rep.Calls) != 2 {
		t.Fatalf("calls = %v, want the two primitives", rep.Calls)
	}
}

func TestCapsForHostsExcludesUndeclaredResults(t *testing.T) {
	caps := CapsForHosts([]mobilecode.HostFunc{
		{Name: "declared", Arity: 1, Results: 1},
		{Name: "legacy", Arity: 1}, // undeclared result count
	})
	if _, ok := caps["declared"]; !ok {
		t.Fatal("declared host missing from the capability set")
	}
	if _, ok := caps["legacy"]; ok {
		t.Fatal("host with undeclared results must be uncallable")
	}
}

func TestLoaderVerifierGatesDeployment(t *testing.T) {
	signer, err := mobilecode.NewSigner("test-op")
	if err != nil {
		t.Fatal(err)
	}
	// A properly signed module whose decode program calls outside the
	// manifest: provenance fine, safety not.
	enc, err := mobilecode.Assemble("CALL identity\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	dec, err := mobilecode.Assemble("CALL backdoor.fetch\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	encBin, err := enc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decBin, err := dec.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m, err := mobilecode.NewModule("pad-evil", "1.0", mobilecode.Payload{
		Protocol: "direct", Encode: encBin, Decode: decBin,
	}, signer)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	trust := mobilecode.NewTrustList()
	if err := trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	loader, err := mobilecode.NewLoader(trust, mobilecode.DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	// Without the verifier the historical pipeline accepts it (the fault
	// would only surface at run time).
	if _, err := loader.Load(packed); err != nil {
		t.Fatalf("digest+signature pipeline rejected the module: %v", err)
	}
	loader.SetVerifier(LoaderVerifier())
	_, err = loader.Load(packed)
	if err == nil {
		t.Fatal("verifier-armed loader deployed a module with an undeclared CALL")
	}
	var verr *Error
	if !errors.As(err, &verr) || !errors.Is(err, ErrUndeclaredCall) {
		t.Fatalf("rejection not typed as an undeclared call: %v", err)
	}
}
