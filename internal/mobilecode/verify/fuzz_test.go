package verify

import (
	"errors"
	"math/rand"
	"testing"

	"fractal/internal/mobilecode"
)

// fuzzSyms mixes declared primitives with symbols outside the manifest, so
// generated programs exercise both capability resolution outcomes.
var fuzzSyms = []string{
	"identity", "gzip.encode", "gzip.decode",
	"bitmap.encode", "bitmap.decode", "vary.encode", "vary.decode",
	"evil.exfiltrate", "fs.read",
}

// programFromBytes decodes an arbitrary byte string into a structurally
// valid Program (jump targets in range, CALLs with symbols), so the
// verifier — not Validate — decides acceptance.
func programFromBytes(data []byte) mobilecode.Program {
	n := len(data) / 3
	if n == 0 {
		return nil
	}
	if n > 48 {
		n = 48
	}
	allOps := []mobilecode.Op{
		mobilecode.OpNop, mobilecode.OpHalt, mobilecode.OpPush, mobilecode.OpPop,
		mobilecode.OpDupB, mobilecode.OpSwapB, mobilecode.OpDropB, mobilecode.OpSize,
		mobilecode.OpConcatB, mobilecode.OpSliceB, mobilecode.OpLt, mobilecode.OpEq,
		mobilecode.OpJmp, mobilecode.OpJz, mobilecode.OpCall,
	}
	p := make(mobilecode.Program, n)
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[i*3], data[i*3+1], data[i*3+2]
		in := mobilecode.Instr{Op: allOps[int(b0)%len(allOps)]}
		switch in.Op {
		case mobilecode.OpPush:
			in.Arg = int64(int8(b1))
		case mobilecode.OpJmp, mobilecode.OpJz:
			in.Arg = int64((int(b1) | int(b2)<<8) % n)
		case mobilecode.OpCall:
			in.Sym = fuzzSyms[int(b1)%len(fuzzSyms)]
		}
		p[i] = in
	}
	return p
}

// staticFaults are the runtime failure classes the verifier claims to
// prove absent in accepted programs.
var staticFaults = []error{
	mobilecode.ErrIntUnderflow,
	mobilecode.ErrBufUnderflow,
	mobilecode.ErrUnknownHost,
	mobilecode.ErrPCRange,
	mobilecode.ErrStackDepth,
}

// checkSoundness is the differential oracle: if the verifier accepts the
// program it must run to completion or fail only with a data-dependent
// error; any static-class fault is a verifier soundness bug.
func checkSoundness(t *testing.T, data []byte) {
	t.Helper()
	p := programFromBytes(data)
	if p == nil {
		return
	}
	sb := mobilecode.Sandbox{MaxInstructions: 1 << 12, MaxBufferBytes: 1 << 20, MaxStackDepth: 6}
	hosts, err := mobilecode.HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, verr := Program(p, DeployConfig(hosts, sb))
	if verr != nil {
		// Every rejection must be typed and name an instruction (or be
		// explicitly program-wide).
		var e *Error
		if !errors.As(verr, &e) {
			t.Fatalf("untyped rejection: %v", verr)
		}
		if e.PC >= len(p) {
			t.Fatalf("rejection names instruction %d of %d: %v", e.PC, len(p), verr)
		}
		return
	}
	vm, err := mobilecode.NewVM(hosts, sb)
	if err != nil {
		t.Fatal(err)
	}
	out, err := vm.Run(p, [][]byte{[]byte("held old version"), []byte("current version bytes")})
	if err != nil {
		for _, fault := range staticFaults {
			if errors.Is(err, fault) {
				t.Fatalf("verifier-accepted program faulted statically: %v\nprogram:\n%s", err, mobilecode.Disassemble(p))
			}
		}
		if rep.ExactCost && errors.Is(err, mobilecode.ErrInstructionBudget) {
			t.Fatalf("exact cost bound %d yet the budget tripped: %v\nprogram:\n%s", rep.MaxCost, err, mobilecode.Disassemble(p))
		}
		return
	}
	if len(out) < 1 {
		t.Fatalf("accepted program halted with %d result buffers\nprogram:\n%s", len(out), mobilecode.Disassemble(p))
	}
}

func FuzzVerifierSoundness(f *testing.F) {
	// Seed with the builtin PAD programs re-encoded into generator bytes is
	// impractical (the mapping is lossy), so seed the generator's corners
	// instead: every opcode, jumps forward and back, calls in and outside
	// the manifest.
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{14, 0, 0, 1, 0, 0})
	f.Add([]byte{14, 7, 0, 1, 0, 0})
	f.Add([]byte{2, 200, 0, 13, 0, 0, 1, 0, 0})
	f.Add([]byte{12, 2, 0, 0, 0, 0, 1, 0, 0})
	f.Add([]byte{4, 0, 0, 8, 0, 0, 9, 0, 0, 1, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		checkSoundness(t, data)
	})
}

// TestRandomDifferentialSoundness gives the soundness contract real
// coverage on every plain `go test` run (the fuzz target above only
// explores under -fuzz): thousands of seeded-random programs through
// verifier and VM.
func TestRandomDifferentialSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 48*3)
	for i := 0; i < 4000; i++ {
		n := 3 * (1 + rng.Intn(48))
		data := buf[:n]
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		checkSoundness(t, data)
	}
}

// TestMutatedBuiltinsSoundness mutates the real builtin PAD programs —
// opcode flips, argument tweaks, instruction swaps — and checks the same
// contract: whatever the verifier still accepts must not fault statically.
func TestMutatedBuiltinsSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var seeds []mobilecode.Program
	specs := mobilecode.BuiltinSpecs()
	specs = append(specs, mobilecode.CascadeSpec(), mobilecode.RsyncSpec())
	for _, spec := range specs {
		for _, src := range []string{spec.EncodeSrc, spec.DecodeSrc} {
			p, err := mobilecode.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			seeds = append(seeds, p)
		}
	}
	sb := mobilecode.Sandbox{MaxInstructions: 1 << 12, MaxBufferBytes: 1 << 20, MaxStackDepth: 6}
	hosts, err := mobilecode.HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DeployConfig(hosts, sb)
	vm, err := mobilecode.NewVM(hosts, sb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		seed := seeds[rng.Intn(len(seeds))]
		p := append(mobilecode.Program(nil), seed...)
		for k := 0; k <= rng.Intn(3); k++ {
			j := rng.Intn(len(p))
			switch rng.Intn(4) {
			case 0:
				p[j].Op = mobilecode.Op(rng.Intn(15))
			case 1:
				p[j].Arg = int64(rng.Intn(len(p)))
			case 2:
				p[j].Sym = fuzzSyms[rng.Intn(len(fuzzSyms))]
			case 3:
				p = append(p[:j:j], append(mobilecode.Program{{Op: mobilecode.Op(rng.Intn(15)), Arg: int64(rng.Intn(len(p)))}}, p[j:]...)...)
			}
		}
		if p.Validate() != nil {
			continue // structurally broken mutants are Validate's business
		}
		if _, err := Program(p, cfg); err != nil {
			continue
		}
		if _, err := vm.Run(p, [][]byte{[]byte("old"), []byte("cur")}); err != nil {
			for _, fault := range staticFaults {
				if errors.Is(err, fault) {
					t.Fatalf("accepted mutant faulted statically: %v\nprogram:\n%s", err, mobilecode.Disassemble(p))
				}
			}
		}
	}
}
