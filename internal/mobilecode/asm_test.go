package mobilecode

import (
	"strings"
	"testing"
)

func TestAssembleDuplicateLabelNamesBothLines(t *testing.T) {
	src := "top:\nPUSH 1\ntop:\nHALT"
	_, err := Assemble(src)
	if err == nil {
		t.Fatal("duplicate label accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "line 3") || !strings.Contains(msg, `duplicate label "top"`) {
		t.Fatalf("error does not locate the redefinition: %v", err)
	}
	if !strings.Contains(msg, "first defined at line 1") {
		t.Fatalf("error does not locate the first definition: %v", err)
	}
}

func TestAssembleReportsEveryUnresolvedFixup(t *testing.T) {
	src := "JMP missing1\nJZ missing2\nJMP missing1\nHALT"
	_, err := Assemble(src)
	if err == nil {
		t.Fatal("unresolved labels accepted")
	}
	msg := err.Error()
	for _, want := range []string{
		`line 1: undefined label "missing1"`,
		`line 2: undefined label "missing2"`,
		`line 3: undefined label "missing1"`,
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q is missing %q", msg, want)
		}
	}
}

func TestAssembleRoundTripWithLabels(t *testing.T) {
	src := `
		PUSH 0
		JZ done
		CALL identity
	done:
		HALT`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(p[1].Arg); got != 3 {
		t.Fatalf("JZ resolved to %d, want 3", got)
	}
	again, err := Assemble(Disassemble(p))
	if err != nil {
		t.Fatalf("reassembling disassembly: %v", err)
	}
	if len(again) != len(p) {
		t.Fatalf("round trip changed length: %d != %d", len(again), len(p))
	}
}
