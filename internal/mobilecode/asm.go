package mobilecode

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small textual assembly into a Program. Syntax, one
// instruction per line:
//
//	; comment                     (also after instructions)
//	label:                        (jump target)
//	PUSH 42
//	JZ   label
//	CALL gzip.encode
//	HALT
//
// Labels resolve to absolute instruction indices. Mnemonics are
// case-insensitive.
func Assemble(src string) (Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog Program
	labels := map[string]int{}
	labelLines := map[string]int{}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if name == "" || strings.ContainsAny(name, " \t") {
				return nil, fmt.Errorf("mobilecode: line %d: malformed label %q", lineNo+1, raw)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("mobilecode: line %d: duplicate label %q (first defined at line %d)", lineNo+1, name, labelLines[name])
			}
			labels[name] = len(prog)
			labelLines[name] = lineNo + 1
			continue
		}
		fields := strings.Fields(line)
		mn := strings.ToUpper(fields[0])
		arg := ""
		if len(fields) > 1 {
			arg = fields[1]
		}
		if len(fields) > 2 {
			return nil, fmt.Errorf("mobilecode: line %d: too many operands in %q", lineNo+1, raw)
		}
		var op Op
		found := false
		for o, name := range opNames {
			if name == mn {
				op, found = o, true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("mobilecode: line %d: unknown mnemonic %q", lineNo+1, mn)
		}
		in := Instr{Op: op}
		switch op {
		case OpPush:
			v, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mobilecode: line %d: PUSH needs an integer: %v", lineNo+1, err)
			}
			in.Arg = v
		case OpJmp, OpJz:
			if arg == "" {
				return nil, fmt.Errorf("mobilecode: line %d: %s needs a label", lineNo+1, mn)
			}
			fixups = append(fixups, pending{instr: len(prog), label: arg, line: lineNo + 1})
		case OpCall:
			if arg == "" {
				return nil, fmt.Errorf("mobilecode: line %d: CALL needs a symbol", lineNo+1)
			}
			in.Sym = arg
		default:
			if arg != "" {
				return nil, fmt.Errorf("mobilecode: line %d: %s takes no operand", lineNo+1, mn)
			}
		}
		prog = append(prog, in)
	}
	// Resolve all fixups before reporting, so a source with several broken
	// jumps surfaces every undefined label (with its use line) in one pass
	// instead of one per assemble attempt.
	var unresolved []string
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			unresolved = append(unresolved, fmt.Sprintf("line %d: undefined label %q", f.line, f.label))
			continue
		}
		prog[f.instr].Arg = int64(target)
	}
	if len(unresolved) > 0 {
		return nil, fmt.Errorf("mobilecode: %s", strings.Join(unresolved, "; "))
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustAssemble is Assemble for known-good package-level sources; it panics
// on error.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders a program back into assembly (with numeric jump
// targets as synthesized labels).
func Disassemble(p Program) string {
	targets := map[int64]string{}
	for _, in := range p {
		if in.Op == OpJmp || in.Op == OpJz {
			if _, ok := targets[in.Arg]; !ok {
				targets[in.Arg] = fmt.Sprintf("L%d", in.Arg)
			}
		}
	}
	var b strings.Builder
	for i, in := range p {
		if lbl, ok := targets[int64(i)]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		switch in.Op {
		case OpPush:
			fmt.Fprintf(&b, "\t%s %d\n", in.Op, in.Arg)
		case OpJmp, OpJz:
			fmt.Fprintf(&b, "\t%s %s\n", in.Op, targets[in.Arg])
		case OpCall:
			fmt.Fprintf(&b, "\t%s %s\n", in.Op, in.Sym)
		default:
			fmt.Fprintf(&b, "\t%s\n", in.Op)
		}
	}
	return b.String()
}
