// Package mobilecode is Fractal's mobile-code substrate. The paper ships
// protocol adaptors (PADs) as Java class objects loaded by the JVM; Go has
// no runtime code loading, so a PAD here is a signed, digest-protected
// module whose payload is a program for a small buffer-stack virtual
// machine. The VM preserves the property the framework needs — a client
// can download, verify, and *execute* protocol logic it did not ship with —
// including the paper's security mechanisms (Section 3.5): SHA-1 message
// digests, code signing against a trust list, and a sandbox that bounds
// the instructions, memory, and buffers a PAD may consume.
package mobilecode

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op is a VM opcode. The machine has two stacks: a buffer stack of byte
// slices (the data being transformed) and an integer stack (control
// values). Host calls invoke named primitives registered by the embedder.
type Op uint8

// The instruction set.
const (
	OpNop     Op = iota // no effect
	OpHalt              // stop successfully
	OpPush              // push immediate onto the int stack
	OpPop               // discard top of int stack
	OpDupB              // duplicate top buffer
	OpSwapB             // swap top two buffers
	OpDropB             // drop top buffer
	OpSize              // push len(top buffer) onto int stack
	OpConcatB           // pop two buffers, push their concatenation
	OpSliceB            // pop end, start ints; slice top buffer in place
	OpLt                // pop b, a; push 1 if a < b else 0
	OpEq                // pop b, a; push 1 if a == b else 0
	OpJmp               // jump to absolute instruction index (immediate)
	OpJz                // pop int; jump to immediate index if it is zero
	OpCall              // invoke host function named by the symbol
	opMax
)

var opNames = map[Op]string{
	OpNop: "NOP", OpHalt: "HALT", OpPush: "PUSH", OpPop: "POP",
	OpDupB: "DUPB", OpSwapB: "SWAPB", OpDropB: "DROPB", OpSize: "SIZE",
	OpConcatB: "CONCATB", OpSliceB: "SLICEB", OpLt: "LT", OpEq: "EQ",
	OpJmp: "JMP", OpJz: "JZ", OpCall: "CALL",
}

// String returns the assembler mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("OP(%d)", uint8(o))
}

// Instr is one VM instruction. Arg is the immediate for OpPush/OpJmp/OpJz;
// Sym is the host-function name for OpCall.
type Instr struct {
	Op  Op
	Arg int64
	Sym string
}

// Program is an executable instruction sequence.
type Program []Instr

// Validate performs static checks: known opcodes, jump targets inside the
// program, and non-empty call symbols. A valid program can still fail at
// run time (stack underflow, unknown host function, budget exhaustion) —
// those are sandbox matters.
func (p Program) Validate() error {
	if len(p) == 0 {
		return errors.New("mobilecode: empty program")
	}
	for i, in := range p {
		if in.Op >= opMax {
			return fmt.Errorf("mobilecode: instruction %d: unknown opcode %d", i, in.Op)
		}
		switch in.Op {
		case OpJmp, OpJz:
			if in.Arg < 0 || in.Arg >= int64(len(p)) {
				return fmt.Errorf("mobilecode: instruction %d: jump target %d outside program of %d instructions", i, in.Arg, len(p))
			}
		case OpCall:
			if in.Sym == "" {
				return fmt.Errorf("mobilecode: instruction %d: CALL without symbol", i)
			}
		}
	}
	return nil
}

// MarshalBinary encodes the program for transport inside a PAD payload.
func (p Program) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(p)))]...)
	for _, in := range p {
		out = append(out, byte(in.Op))
		out = append(out, tmp[:binary.PutVarint(tmp[:], in.Arg)]...)
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(len(in.Sym)))]...)
		out = append(out, in.Sym...)
	}
	return out, nil
}

// UnmarshalProgram decodes a program encoded by MarshalBinary and
// validates it.
func UnmarshalProgram(data []byte) (Program, error) {
	pos := 0
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errors.New("mobilecode: truncated program")
		}
		pos += n
		return v, nil
	}
	n, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("mobilecode: program of %d instructions is unreasonable", n)
	}
	p := make(Program, 0, n)
	for i := uint64(0); i < n; i++ {
		if pos >= len(data) {
			return nil, errors.New("mobilecode: truncated program")
		}
		op := Op(data[pos])
		pos++
		arg, m := binary.Varint(data[pos:])
		if m <= 0 {
			return nil, errors.New("mobilecode: truncated immediate")
		}
		pos += m
		symLen, err := readUvarint()
		if err != nil {
			return nil, err
		}
		if symLen > 256 || pos+int(symLen) > len(data) {
			return nil, errors.New("mobilecode: truncated symbol")
		}
		sym := string(data[pos : pos+int(symLen)])
		pos += int(symLen)
		p = append(p, Instr{Op: op, Arg: arg, Sym: sym})
	}
	if pos != len(data) {
		return nil, fmt.Errorf("mobilecode: %d trailing bytes after program", len(data)-pos)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// HostFunc is a primitive callable from PAD programs. It pops `Arity`
// buffers (topmost last in the slice) and its results are pushed in order.
// Results declares how many buffers a successful call pushes; the static
// verifier uses it to bound the buffer stack, and the VM enforces the
// declaration at run time when it is set.
type HostFunc struct {
	Name  string
	Arity int
	// Results is the declared number of result buffers. Zero means
	// undeclared for compatibility with hand-built tables; declared tables
	// (HostTable) always fill it in.
	Results int
	Fn      func(args [][]byte) ([][]byte, error)
}

// Sandbox bounds a PAD execution, the paper's VMM/sandbox mechanism. The
// zero value denies everything; use DefaultSandbox for sane limits.
type Sandbox struct {
	MaxInstructions int64 // total executed instructions
	MaxBufferBytes  int64 // total bytes live on the buffer stack
	MaxStackDepth   int   // buffer and int stack depth
}

// DefaultSandbox allows generous budgets suited to page-sized transforms.
func DefaultSandbox() Sandbox {
	return Sandbox{MaxInstructions: 1 << 20, MaxBufferBytes: 64 << 20, MaxStackDepth: 64}
}

// Validate reports whether the sandbox limits are usable.
func (s Sandbox) Validate() error {
	if s.MaxInstructions < 1 || s.MaxBufferBytes < 1 || s.MaxStackDepth < 1 {
		return fmt.Errorf("mobilecode: sandbox limits must be positive: %+v", s)
	}
	return nil
}

// VM executes programs against a host-function table under a sandbox.
// A VM is immutable after construction and safe for concurrent use; each
// Run uses its own execution state.
type VM struct {
	hosts   map[string]HostFunc
	sandbox Sandbox
}

// NewVM builds a VM with the given host functions and sandbox.
func NewVM(hosts []HostFunc, sb Sandbox) (*VM, error) {
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	m := map[string]HostFunc{}
	for _, h := range hosts {
		if h.Name == "" || h.Fn == nil || h.Arity < 0 || h.Results < 0 {
			return nil, fmt.Errorf("mobilecode: malformed host function %q", h.Name)
		}
		if _, dup := m[h.Name]; dup {
			return nil, fmt.Errorf("mobilecode: duplicate host function %q", h.Name)
		}
		m[h.Name] = h
	}
	return &VM{hosts: m, sandbox: sb}, nil
}

// RunError describes a PAD execution failure, including where it occurred.
type RunError struct {
	PC  int
	Op  Op
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	return fmt.Sprintf("mobilecode: pc=%d %s: %v", e.PC, e.Op, e.Err)
}

// Unwrap exposes the cause.
func (e *RunError) Unwrap() error { return e.Err }

// Budget errors, matchable with errors.Is.
var (
	ErrInstructionBudget = errors.New("instruction budget exhausted")
	ErrMemoryBudget      = errors.New("buffer memory budget exhausted")
	ErrStackDepth        = errors.New("stack depth limit exceeded")
)

// Static-class faults: failures a sound bytecode verifier proves absent
// before deployment (see internal/mobilecode/verify). They are sentinels,
// matchable with errors.Is, so the verifier's differential fuzz harness
// can pin the soundness contract "verifier-accepted programs never trip
// one of these at run time".
var (
	ErrIntUnderflow = errors.New("int stack underflow")
	ErrBufUnderflow = errors.New("buffer stack underflow")
	ErrUnknownHost  = errors.New("unknown host function")
	ErrPCRange      = errors.New("program counter out of range (missing HALT?)")
)

// Run executes the program with the given initial buffer stack and returns
// the final buffer stack. The input slices are not modified.
func (v *VM) Run(p Program, inputs [][]byte) ([][]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	st := &state{vm: v}
	for _, in := range inputs {
		if err := st.pushB(append([]byte(nil), in...)); err != nil {
			return nil, err
		}
	}
	pc := 0
	for {
		if pc < 0 || pc >= len(p) {
			return nil, &RunError{PC: pc, Op: OpNop, Err: ErrPCRange}
		}
		st.steps++
		if st.steps > v.sandbox.MaxInstructions {
			return nil, &RunError{PC: pc, Op: p[pc].Op, Err: ErrInstructionBudget}
		}
		in := p[pc]
		var err error
		switch in.Op {
		case OpNop:
		case OpHalt:
			return st.bufs, nil
		case OpPush:
			err = st.pushI(in.Arg)
		case OpPop:
			_, err = st.popI()
		case OpDupB:
			var b []byte
			if b, err = st.peekB(); err == nil {
				err = st.pushB(append([]byte(nil), b...))
			}
		case OpSwapB:
			err = st.swapB()
		case OpDropB:
			_, err = st.popB()
		case OpSize:
			var b []byte
			if b, err = st.peekB(); err == nil {
				err = st.pushI(int64(len(b)))
			}
		case OpConcatB:
			var top, below []byte
			if top, err = st.popB(); err != nil {
				break
			}
			if below, err = st.popB(); err != nil {
				break
			}
			err = st.pushB(append(below, top...))
		case OpSliceB:
			var end, start int64
			if end, err = st.popI(); err != nil {
				break
			}
			if start, err = st.popI(); err != nil {
				break
			}
			var b []byte
			if b, err = st.popB(); err != nil {
				break
			}
			if start < 0 || end < start || end > int64(len(b)) {
				err = fmt.Errorf("slice [%d:%d] of %d-byte buffer", start, end, len(b))
				break
			}
			err = st.pushB(b[start:end])
		case OpLt, OpEq:
			var b2, a2 int64
			if b2, err = st.popI(); err != nil {
				break
			}
			if a2, err = st.popI(); err != nil {
				break
			}
			r := int64(0)
			if (in.Op == OpLt && a2 < b2) || (in.Op == OpEq && a2 == b2) {
				r = 1
			}
			err = st.pushI(r)
		case OpJmp:
			pc = int(in.Arg)
			continue
		case OpJz:
			var c int64
			if c, err = st.popI(); err != nil {
				break
			}
			if c == 0 {
				pc = int(in.Arg)
				continue
			}
		case OpCall:
			err = st.call(in.Sym)
		default:
			err = fmt.Errorf("unknown opcode %d", in.Op)
		}
		if err != nil {
			return nil, &RunError{PC: pc, Op: in.Op, Err: err}
		}
		pc++
	}
}

// state is one execution's mutable machinery.
type state struct {
	vm    *VM
	bufs  [][]byte
	ints  []int64
	bytes int64
	steps int64
}

func (s *state) pushB(b []byte) error {
	if len(s.bufs) >= s.vm.sandbox.MaxStackDepth {
		return ErrStackDepth
	}
	s.bytes += int64(len(b))
	if s.bytes > s.vm.sandbox.MaxBufferBytes {
		return ErrMemoryBudget
	}
	s.bufs = append(s.bufs, b)
	return nil
}

func (s *state) popB() ([]byte, error) {
	if len(s.bufs) == 0 {
		return nil, ErrBufUnderflow
	}
	b := s.bufs[len(s.bufs)-1]
	s.bufs = s.bufs[:len(s.bufs)-1]
	s.bytes -= int64(len(b))
	return b, nil
}

func (s *state) peekB() ([]byte, error) {
	if len(s.bufs) == 0 {
		return nil, ErrBufUnderflow
	}
	return s.bufs[len(s.bufs)-1], nil
}

func (s *state) swapB() error {
	if len(s.bufs) < 2 {
		return ErrBufUnderflow
	}
	n := len(s.bufs)
	s.bufs[n-1], s.bufs[n-2] = s.bufs[n-2], s.bufs[n-1]
	return nil
}

func (s *state) pushI(v int64) error {
	if len(s.ints) >= s.vm.sandbox.MaxStackDepth {
		return ErrStackDepth
	}
	s.ints = append(s.ints, v)
	return nil
}

func (s *state) popI() (int64, error) {
	if len(s.ints) == 0 {
		return 0, ErrIntUnderflow
	}
	v := s.ints[len(s.ints)-1]
	s.ints = s.ints[:len(s.ints)-1]
	return v, nil
}

func (s *state) call(sym string) error {
	h, ok := s.vm.hosts[sym]
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownHost, sym)
	}
	args := make([][]byte, h.Arity)
	for i := h.Arity - 1; i >= 0; i-- {
		b, err := s.popB()
		if err != nil {
			return fmt.Errorf("call %q: %w", sym, err)
		}
		args[i] = b
	}
	results, err := h.Fn(args)
	if err != nil {
		return fmt.Errorf("call %q: %w", sym, err)
	}
	// A declared result count is a contract the verifier's stack-height
	// proof depends on; a primitive that violates it is a host-table bug,
	// not a program fault, and must not silently skew the buffer stack.
	if h.Results > 0 && len(results) != h.Results {
		return fmt.Errorf("call %q: host returned %d buffers, declared %d", sym, len(results), h.Results)
	}
	for _, r := range results {
		if err := s.pushB(r); err != nil {
			return fmt.Errorf("call %q result: %w", sym, err)
		}
	}
	return nil
}
