package mobilecode

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func testVM(t testing.TB) *VM {
	t.Helper()
	hosts, err := HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(hosts, DefaultSandbox())
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestProgramValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Program
	}{
		{"empty", Program{}},
		{"bad opcode", Program{{Op: opMax}}},
		{"jump out of range", Program{{Op: OpJmp, Arg: 5}, {Op: OpHalt}}},
		{"negative jump", Program{{Op: OpJz, Arg: -1}, {Op: OpHalt}}},
		{"call without symbol", Program{{Op: OpCall}, {Op: OpHalt}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); err == nil {
			t.Errorf("%s: invalid program validated", c.name)
		}
	}
	good := Program{{Op: OpPush, Arg: 1}, {Op: OpJz, Arg: 0}, {Op: OpHalt}}
	if err := good.Validate(); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
}

func TestProgramBinaryRoundTrip(t *testing.T) {
	p := Program{
		{Op: OpPush, Arg: -42},
		{Op: OpSize},
		{Op: OpLt},
		{Op: OpJz, Arg: 5},
		{Op: OpCall, Sym: "gzip.encode"},
		{Op: OpHalt},
	}
	bin, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalProgram(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != len(p) {
		t.Fatalf("round trip length %d, want %d", len(q), len(p))
	}
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, q[i], p[i])
		}
	}
}

func TestUnmarshalProgramRejectsCorrupt(t *testing.T) {
	p := Program{{Op: OpPush, Arg: 7}, {Op: OpHalt}}
	bin, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalProgram(bin[:len(bin)-1]); err == nil {
		t.Error("truncated program unmarshalled")
	}
	if _, err := UnmarshalProgram(append(bin, 0)); err == nil {
		t.Error("program with trailing bytes unmarshalled")
	}
	if _, err := UnmarshalProgram(nil); err == nil {
		t.Error("empty data unmarshalled")
	}
}

func TestVMIdentityAndStackOps(t *testing.T) {
	vm := testVM(t)
	// [a, b] -> swap -> [b, a] -> dup -> [b, a, a] -> concat -> [b, aa]
	p := MustAssemble(`
		SWAPB
		DUPB
		CONCATB
		HALT`)
	out, err := vm.Run(p, [][]byte{[]byte("bb"), []byte("a")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || string(out[0]) != "a" || string(out[1]) != "bbbb" {
		t.Fatalf("stack = %q, want [a bbbb]", out)
	}
}

func TestVMSliceAndSize(t *testing.T) {
	vm := testVM(t)
	p := MustAssemble(`
		PUSH 1
		PUSH 4
		SLICEB
		HALT`)
	out, err := vm.Run(p, [][]byte{[]byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0]) != "bcd" {
		t.Fatalf("slice = %q, want bcd", out[0])
	}
	bad := MustAssemble(`
		PUSH 4
		PUSH 1
		SLICEB
		HALT`)
	if _, err := vm.Run(bad, [][]byte{[]byte("abcdef")}); err == nil {
		t.Fatal("inverted slice bounds accepted")
	}
}

func TestVMConditionalBranch(t *testing.T) {
	vm := testVM(t)
	// If len(input) < 4, return it unchanged, else gzip it.
	src := `
		SIZE
		PUSH 4
		LT
		JZ big
		CALL identity
		HALT
	big:
		CALL gzip.encode
		HALT`
	p := MustAssemble(src)
	small, err := vm.Run(p, [][]byte{[]byte("abc")})
	if err != nil {
		t.Fatal(err)
	}
	if string(small[len(small)-1]) != "abc" {
		t.Fatalf("small path = %q, want abc", small[len(small)-1])
	}
	big, err := vm.Run(p, [][]byte{bytes.Repeat([]byte("x"), 100)})
	if err != nil {
		t.Fatal(err)
	}
	if len(big[len(big)-1]) >= 100 {
		t.Fatal("big path did not compress")
	}
}

func TestVMEqAndPop(t *testing.T) {
	vm := testVM(t)
	p := MustAssemble(`
		PUSH 3
		PUSH 3
		EQ
		JZ nope
		PUSH 99
		POP
		CALL identity
		HALT
	nope:
		DROPB
		HALT`)
	out, err := vm.Run(p, [][]byte{[]byte("keep")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0]) != "keep" {
		t.Fatalf("EQ path result = %q", out)
	}
}

func TestVMRuntimeErrors(t *testing.T) {
	vm := testVM(t)
	cases := []struct {
		name string
		src  string
		in   [][]byte
	}{
		{"buffer underflow", "DROPB\nDROPB\nHALT", [][]byte{[]byte("x")}},
		{"int underflow", "POP\nHALT", nil},
		{"unknown host fn", "CALL no.such.fn\nHALT", [][]byte{[]byte("x")}},
		{"host arity underflow", "CALL bitmap.encode\nHALT", [][]byte{[]byte("x")}},
		{"no halt", "NOP", nil},
		{"swap underflow", "SWAPB\nHALT", [][]byte{[]byte("x")}},
	}
	for _, c := range cases {
		p, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", c.name, err)
		}
		if _, err := vm.Run(p, c.in); err == nil {
			t.Errorf("%s: run succeeded, want error", c.name)
		}
	}
}

func TestSandboxInstructionBudget(t *testing.T) {
	hosts, err := HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(hosts, Sandbox{MaxInstructions: 100, MaxBufferBytes: 1 << 20, MaxStackDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	loop := MustAssemble(`
	top:
		NOP
		JMP top`)
	_, err = vm.Run(loop, nil)
	if !errors.Is(err, ErrInstructionBudget) {
		t.Fatalf("infinite loop error = %v, want instruction budget", err)
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T does not unwrap to RunError", err)
	}
}

func TestSandboxMemoryBudget(t *testing.T) {
	hosts, err := HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(hosts, Sandbox{MaxInstructions: 1 << 20, MaxBufferBytes: 1024, MaxStackDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated self-concatenation doubles the buffer until the budget trips.
	bomb := MustAssemble(`
	top:
		DUPB
		CONCATB
		JMP top`)
	_, err = vm.Run(bomb, [][]byte{[]byte("xxxxxxxx")})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("memory bomb error = %v, want memory budget", err)
	}
}

func TestSandboxStackDepth(t *testing.T) {
	hosts, err := HostTable(nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(hosts, Sandbox{MaxInstructions: 1 << 20, MaxBufferBytes: 1 << 20, MaxStackDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	deep := MustAssemble(`
	top:
		DUPB
		JMP top`)
	_, err = vm.Run(deep, [][]byte{[]byte("x")})
	if !errors.Is(err, ErrStackDepth) {
		t.Fatalf("deep stack error = %v, want stack depth", err)
	}
}

func TestSandboxValidation(t *testing.T) {
	hosts, _ := HostTable(nil)
	for _, sb := range []Sandbox{
		{},
		{MaxInstructions: 1, MaxBufferBytes: 1},
		{MaxInstructions: 1, MaxStackDepth: 1},
	} {
		if _, err := NewVM(hosts, sb); err == nil {
			t.Errorf("sandbox %+v accepted", sb)
		}
	}
}

func TestNewVMRejectsBadHostTables(t *testing.T) {
	ok := HostFunc{Name: "f", Arity: 1, Fn: func(a [][]byte) ([][]byte, error) { return a, nil }}
	if _, err := NewVM([]HostFunc{ok, ok}, DefaultSandbox()); err == nil {
		t.Error("duplicate host fn accepted")
	}
	if _, err := NewVM([]HostFunc{{Name: "", Arity: 1, Fn: ok.Fn}}, DefaultSandbox()); err == nil {
		t.Error("anonymous host fn accepted")
	}
	if _, err := NewVM([]HostFunc{{Name: "g", Arity: 1}}, DefaultSandbox()); err == nil {
		t.Error("nil host fn accepted")
	}
}

func TestVMInputIsolation(t *testing.T) {
	vm := testVM(t)
	in := []byte("immutable")
	p := MustAssemble(`
		PUSH 0
		PUSH 2
		SLICEB
		HALT`)
	if _, err := vm.Run(p, [][]byte{in}); err != nil {
		t.Fatal(err)
	}
	if string(in) != "immutable" {
		t.Fatal("VM modified caller's input slice")
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"FROB",                    // unknown mnemonic
		"PUSH",                    // missing operand
		"PUSH abc",                // non-integer
		"JZ nowhere\nHALT",        // undefined label
		"x:\nx:\nHALT",            // duplicate label
		"HALT extra",              // stray operand
		"CALL",                    // missing symbol
		"PUSH 1 2\nHALT",          // too many operands
		"bad label:\nHALT",        // label with space
		"JMP\nHALT",               // jump without label
		"",                        // empty program
		"; only a comment\n\n\t ", // still empty
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `
		SIZE
		PUSH 64
		LT
		JZ big
		CALL identity
		HALT
	big:
		CALL gzip.encode
		HALT`
	p := MustAssemble(src)
	p2, err := Assemble(Disassemble(p))
	if err != nil {
		t.Fatalf("reassembling disassembly: %v", err)
	}
	if len(p2) != len(p) {
		t.Fatalf("round trip %d instructions, want %d", len(p2), len(p))
	}
	for i := range p {
		if p[i] != p2[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, p2[i], p[i])
		}
	}
}

// Property: program binary round trip is exact for arbitrary generated
// valid programs.
func TestProgramBinaryRoundTripProperty(t *testing.T) {
	f := func(pushes []int64, callGzip bool) bool {
		p := Program{}
		for _, v := range pushes {
			p = append(p, Instr{Op: OpPush, Arg: v})
		}
		if callGzip {
			p = append(p, Instr{Op: OpCall, Sym: "gzip.encode"})
		}
		p = append(p, Instr{Op: OpHalt})
		bin, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q, err := UnmarshalProgram(bin)
		if err != nil || len(q) != len(p) {
			return false
		}
		for i := range p {
			if p[i] != q[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
