package mobilecode

import (
	"fmt"
	"strconv"

	"fractal/internal/codec"
	"fractal/internal/rabin"
)

// HostTable builds the standard host-function set available to PAD
// programs, configured from a module's Params. These are the primitives a
// PAD composes into a protocol — the equivalent of the class libraries a
// Java PAD links against on the client:
//
//	identity            1 buffer  -> 1 buffer (copy)
//	gzip.encode/.decode 1 buffer  -> 1 buffer (param "gzip.level")
//	bitmap.encode       2 buffers (old, cur)     -> payload (param "bitmap.block")
//	bitmap.decode       2 buffers (old, payload) -> cur
//	vary.encode         2 buffers (old, cur)     -> payload (params "vary.min", "vary.max", "vary.maskbits")
//	vary.decode         2 buffers (old, payload) -> cur
//	rsync.encode        2 buffers (old, cur)     -> payload (param "rsync.block")
//	rsync.decode        2 buffers (old, payload) -> cur
//
// The differencing primitives share one small chunk-index cache per host
// table (one table per deployed PAD), so a session repeatedly decoding
// against the same held version re-chunks it once instead of per request.
func HostTable(params map[string]string) ([]HostFunc, error) {
	hosts, _, err := HostTableWithCache(params)
	return hosts, err
}

// HostTableWithCache is HostTable, also returning the chunk-index cache
// the table's differencing primitives share (for observability).
func HostTableWithCache(params map[string]string) ([]HostFunc, *codec.ChunkCache, error) {
	get := func(key string, def int) (int, error) {
		v, ok := params[key]
		if !ok {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("mobilecode: param %q=%q is not an integer: %w", key, v, err)
		}
		return n, nil
	}

	level, err := get("gzip.level", -1)
	if err != nil {
		return nil, nil, err
	}
	gz, err := codec.NewGzipLevel(level)
	if err != nil {
		return nil, nil, fmt.Errorf("mobilecode: configuring gzip primitive: %w", err)
	}

	block, err := get("bitmap.block", codec.DefaultBlockSize)
	if err != nil {
		return nil, nil, err
	}
	bm, err := codec.NewBitmap(block)
	if err != nil {
		return nil, nil, fmt.Errorf("mobilecode: configuring bitmap primitive: %w", err)
	}

	ccfg := rabin.DefaultChunkerConfig()
	if ccfg.MinSize, err = get("vary.min", ccfg.MinSize); err != nil {
		return nil, nil, err
	}
	if ccfg.MaxSize, err = get("vary.max", ccfg.MaxSize); err != nil {
		return nil, nil, err
	}
	maskBits, err := get("vary.maskbits", 9)
	if err != nil {
		return nil, nil, err
	}
	if maskBits < 1 || maskBits > 30 {
		return nil, nil, fmt.Errorf("mobilecode: vary.maskbits %d out of range [1,30]", maskBits)
	}
	ccfg.Mask = 1<<maskBits - 1
	ccfg.Magic &= ccfg.Mask
	vb, err := codec.NewVaryBlockConfig(ccfg)
	if err != nil {
		return nil, nil, fmt.Errorf("mobilecode: configuring vary primitive: %w", err)
	}

	rsBlock, err := get("rsync.block", codec.DefaultBlockSize)
	if err != nil {
		return nil, nil, err
	}
	rs, err := codec.NewRsync(rsBlock)
	if err != nil {
		return nil, nil, fmt.Errorf("mobilecode: configuring rsync primitive: %w", err)
	}

	// hostChunkCacheEntries is deliberately small: a client host typically
	// decodes against a handful of held versions, and each index entry is a
	// few percent of its content's size.
	const hostChunkCacheEntries = 8
	cache := codec.NewChunkCache(hostChunkCacheEntries)
	vb.UseChunkCache(cache)
	bm.UseChunkCache(cache)

	one := func(f func([]byte) ([]byte, error)) func([][]byte) ([][]byte, error) {
		return func(args [][]byte) ([][]byte, error) {
			out, err := f(args[0])
			if err != nil {
				return nil, err
			}
			return [][]byte{out}, nil
		}
	}
	two := func(f func(a, b []byte) ([]byte, error)) func([][]byte) ([][]byte, error) {
		return func(args [][]byte) ([][]byte, error) {
			out, err := f(args[0], args[1])
			if err != nil {
				return nil, err
			}
			return [][]byte{out}, nil
		}
	}

	return []HostFunc{
		{Name: "identity", Arity: 1, Results: 1, Fn: one(func(b []byte) ([]byte, error) {
			return append([]byte(nil), b...), nil
		})},
		{Name: "gzip.encode", Arity: 1, Results: 1, Fn: one(func(b []byte) ([]byte, error) { return gz.Encode(nil, b) })},
		{Name: "gzip.decode", Arity: 1, Results: 1, Fn: one(func(b []byte) ([]byte, error) { return gz.Decode(nil, b) })},
		{Name: "bitmap.encode", Arity: 2, Results: 1, Fn: two(bm.Encode)},
		{Name: "bitmap.decode", Arity: 2, Results: 1, Fn: two(bm.Decode)},
		{Name: "vary.encode", Arity: 2, Results: 1, Fn: two(vb.Encode)},
		{Name: "vary.decode", Arity: 2, Results: 1, Fn: two(vb.Decode)},
		{Name: "rsync.encode", Arity: 2, Results: 1, Fn: two(rs.Encode)},
		{Name: "rsync.decode", Arity: 2, Results: 1, Fn: two(rs.Decode)},
	}, cache, nil
}
