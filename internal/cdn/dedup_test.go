package cdn

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestEdgeFetchConcurrentMissesSingleOriginFill is the delivery-side
// stampede pin (run under -race in CI): concurrent cache misses for one
// object must produce exactly one origin fill, with every other miss
// either joining the in-flight fill or finding the cache already filled.
func TestEdgeFetchConcurrentMissesSingleOriginFill(t *testing.T) {
	o := testOrigin(t)
	payload := bytes.Repeat([]byte("p"), 5000)
	if err := o.Publish("/pad", payload); err != nil {
		t.Fatal(err)
	}
	e, err := NewEdge(edgeConfig("e1", "r1"), o)
	if err != nil {
		t.Fatal(err)
	}
	// Hold the origin's write lock so the fill leader blocks inside
	// origin.Get until every fetcher is in flight.
	o.mu.Lock()
	const fetchers = 32
	var wg, ready sync.WaitGroup
	errs := make(chan error, fetchers)
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		ready.Add(1)
		go func() {
			defer wg.Done()
			ready.Done()
			data, _, miss, err := e.Fetch("/pad")
			if err != nil {
				errs <- err
				return
			}
			if !miss {
				return // late arrival after the fill completed: cache hit
			}
			if !bytes.Equal(data, payload) {
				errs <- fmt.Errorf("fetched %d bytes, want %d", len(data), len(payload))
			}
		}()
	}
	ready.Wait()
	time.Sleep(50 * time.Millisecond) // let fetchers pile up on the fill
	o.mu.Unlock()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.OriginFills != 1 {
		t.Errorf("OriginFills = %d, want exactly 1", st.OriginFills)
	}
	if st.CollapsedFills < 1 {
		t.Errorf("CollapsedFills = %d, want >= 1 (fetchers blocked behind the fill)", st.CollapsedFills)
	}
	if st.Hits+st.Misses != fetchers {
		t.Errorf("Hits(%d) + Misses(%d) != %d fetchers", st.Hits, st.Misses, fetchers)
	}
	// The object is now resident: further fetches are plain hits.
	if _, fill, miss, err := e.Fetch("/pad"); err != nil || miss || fill != 0 {
		t.Errorf("post-stampede fetch: miss=%v fill=%v err=%v, want warm hit", miss, fill, err)
	}
}

// TestEdgeFetchMissErrorNotCached verifies a failed fill does not poison
// the dedup path: after the object appears at the origin, fetches succeed.
func TestEdgeFetchMissErrorNotCached(t *testing.T) {
	o := testOrigin(t)
	e, err := NewEdge(edgeConfig("e1", "r1"), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.Fetch("/late"); err == nil {
		t.Fatal("fetch of unpublished object succeeded")
	}
	if err := o.Publish("/late", []byte("now present")); err != nil {
		t.Fatal(err)
	}
	data, _, miss, err := e.Fetch("/late")
	if err != nil || !miss || string(data) != "now present" {
		t.Fatalf("fetch after publish: data=%q miss=%v err=%v", data, miss, err)
	}
}
