package cdn

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"fractal/internal/netsim"
)

func TestLRUCacheBasics(t *testing.T) {
	c, err := newLRUCache(100)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if c.Len() != 2 || c.Used() != 80 {
		t.Fatalf("len=%d used=%d, want 2/80", c.Len(), c.Used())
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	// Inserting 40 more evicts the LRU entry, which is now b (a was
	// touched by Get).
	c.Put("c", make([]byte, 40))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be cached")
	}
}

func TestLRUCacheOversizedValueNotCached(t *testing.T) {
	c, err := newLRUCache(10)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("big", make([]byte, 11))
	if c.Len() != 0 {
		t.Fatal("oversized value was cached")
	}
}

func TestLRUCacheReplaceSameKey(t *testing.T) {
	c, err := newLRUCache(100)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", make([]byte, 30))
	c.Put("k", make([]byte, 50))
	if c.Len() != 1 || c.Used() != 50 {
		t.Fatalf("len=%d used=%d after replace, want 1/50", c.Len(), c.Used())
	}
}

func TestLRUCacheInvalidCapacity(t *testing.T) {
	if _, err := newLRUCache(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

// Property: the cache never holds more than its capacity.
func TestLRUCacheCapacityInvariantProperty(t *testing.T) {
	c, err := newLRUCache(1000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(keys []uint8, sizes []uint16) bool {
		for i, k := range keys {
			if i >= len(sizes) {
				break
			}
			c.Put(fmt.Sprintf("k%d", k%32), make([]byte, int(sizes[i])%1500))
			if c.Used() > 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testOrigin(t testing.TB) *Origin {
	t.Helper()
	o, err := NewOrigin(netsim.SharedServer{Name: "origin", UplinkKbps: 10000, Rho: 0.8, BaseRTT: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOriginPublishGet(t *testing.T) {
	o := testOrigin(t)
	if err := o.Publish("", []byte("x")); err == nil {
		t.Fatal("empty path published")
	}
	if err := o.Publish("/pads/a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := o.Publish("/pads/b", []byte("beta")); err != nil {
		t.Fatal(err)
	}
	got, err := o.Get("/pads/a")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := o.Get("/pads/nope"); err == nil {
		t.Fatal("missing object fetched")
	}
	ps := o.Paths()
	if len(ps) != 2 || ps[0] != "/pads/a" || ps[1] != "/pads/b" {
		t.Fatalf("paths = %v", ps)
	}
}

func TestOriginDataIsolation(t *testing.T) {
	o := testOrigin(t)
	data := []byte("mutable")
	if err := o.Publish("/x", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, err := o.Get("/x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "mutable" {
		t.Fatal("origin shares caller's backing array")
	}
}

func edgeConfig(id, region string) EdgeConfig {
	return EdgeConfig{
		ID: id, Region: region,
		Server:     netsim.SharedServer{Name: id, UplinkKbps: 100000, Rho: 0.8, BaseRTT: 5 * time.Millisecond},
		CacheBytes: 1 << 20,
		OriginRTT:  40 * time.Millisecond,
		OriginKbps: 10000,
	}
}

func TestEdgeFetchMissThenHit(t *testing.T) {
	o := testOrigin(t)
	if err := o.Publish("/pad", bytes.Repeat([]byte("p"), 5000)); err != nil {
		t.Fatal(err)
	}
	e, err := NewEdge(edgeConfig("e1", "r1"), o)
	if err != nil {
		t.Fatal(err)
	}
	data, fill, miss, err := e.Fetch("/pad")
	if err != nil {
		t.Fatal(err)
	}
	if !miss || fill <= 0 {
		t.Fatalf("first fetch: miss=%v fill=%v, want miss with positive fill", miss, fill)
	}
	if len(data) != 5000 {
		t.Fatalf("fetched %d bytes", len(data))
	}
	_, fill, miss, err = e.Fetch("/pad")
	if err != nil {
		t.Fatal(err)
	}
	if miss || fill != 0 {
		t.Fatalf("second fetch: miss=%v fill=%v, want cache hit", miss, fill)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1/1", st)
	}
	if _, _, _, err := e.Fetch("/absent"); err == nil {
		t.Fatal("fetch of unpublished object succeeded")
	}
}

func TestNewEdgeValidation(t *testing.T) {
	o := testOrigin(t)
	bad := []EdgeConfig{
		{},
		func() EdgeConfig { c := edgeConfig("e", "r"); c.CacheBytes = 0; return c }(),
		func() EdgeConfig { c := edgeConfig("e", "r"); c.OriginKbps = 0; return c }(),
		func() EdgeConfig { c := edgeConfig("e", "r"); c.OriginRTT = -time.Second; return c }(),
		func() EdgeConfig { c := edgeConfig("e", "r"); c.Server.UplinkKbps = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := NewEdge(cfg, o); err == nil {
			t.Errorf("case %d: invalid edge accepted", i)
		}
	}
	if _, err := NewEdge(edgeConfig("e", "r"), nil); err == nil {
		t.Error("edge without origin accepted")
	}
}

func TestCDNEdgeForPrefersRegionThenRTT(t *testing.T) {
	c, err := New(testOrigin(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.EdgeFor("anywhere"); err == nil {
		t.Fatal("EdgeFor succeeded with no edges")
	}
	far := edgeConfig("far", "other")
	far.Server.BaseRTT = 50 * time.Millisecond
	near := edgeConfig("near", "other2")
	near.Server.BaseRTT = 2 * time.Millisecond
	home := edgeConfig("home", "mine")
	home.Server.BaseRTT = 80 * time.Millisecond
	for _, cfg := range []EdgeConfig{far, near, home} {
		if _, err := c.AddEdge(cfg); err != nil {
			t.Fatal(err)
		}
	}
	e, err := c.EdgeFor("mine")
	if err != nil || e.ID != "home" {
		t.Fatalf("EdgeFor(mine) = %v, %v; want home", e, err)
	}
	e, err = c.EdgeFor("elsewhere")
	if err != nil || e.ID != "near" {
		t.Fatalf("EdgeFor(elsewhere) = %v, %v; want near (lowest RTT)", e, err)
	}
}

func TestCDNAddEdgeDuplicate(t *testing.T) {
	c, err := New(testOrigin(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddEdge(edgeConfig("e1", "r")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddEdge(edgeConfig("e1", "r2")); err == nil {
		t.Fatal("duplicate edge id accepted")
	}
}

func TestRetrieveDeliversBytes(t *testing.T) {
	c, err := DefaultTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("m"), 20000)
	if err := c.Origin().Publish("/pads/gzip", blob); err != nil {
		t.Fatal(err)
	}
	r, err := c.Retrieve("region-2", "/pads/gzip", netsim.WLAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Data, blob) {
		t.Fatal("retrieved bytes differ from published")
	}
	if r.EdgeID != "edge-02" {
		t.Fatalf("served by %s, want edge-02", r.EdgeID)
	}
	if r.CacheHit {
		t.Fatal("first retrieval reported a cache hit")
	}
	r2, err := c.Retrieve("region-2", "/pads/gzip", netsim.WLAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("second retrieval missed the edge cache")
	}
	if r2.Time >= r.Time {
		t.Fatalf("cache hit (%v) not faster than miss (%v)", r2.Time, r.Time)
	}
}

// The Figure 9(b) shape: centralized retrieval time grows sharply with
// client count while the distributed (per-edge) time stays flat.
func TestCentralizedVsDistributedScaling(t *testing.T) {
	const edges = 10
	c, err := DefaultTopology(edges)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("p"), 30000)
	if err := c.Origin().Publish("/pad", blob); err != nil {
		t.Fatal(err)
	}
	// Warm every edge cache.
	for i := 0; i < edges; i++ {
		if _, err := c.Retrieve(fmt.Sprintf("region-%d", i), "/pad", netsim.WLAN, 1); err != nil {
			t.Fatal(err)
		}
	}
	centralAt := func(n int) time.Duration {
		r, err := c.RetrieveCentralized("/pad", netsim.WLAN, n)
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	distAt := func(n int) time.Duration {
		perEdge := (n + edges - 1) / edges
		r, err := c.Retrieve("region-3", "/pad", netsim.WLAN, perEdge)
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	c1, c300 := centralAt(1), centralAt(300)
	d1, d300 := distAt(1), distAt(300)
	if ratio := c300.Seconds() / c1.Seconds(); ratio < 5 {
		t.Fatalf("centralized 300-client slowdown only %.1fx; contention model broken", ratio)
	}
	if ratio := d300.Seconds() / d1.Seconds(); ratio > 3 {
		t.Fatalf("distributed 300-client slowdown %.1fx; should stay nearly flat", ratio)
	}
	if c300 <= d300 {
		t.Fatalf("at 300 clients centralized (%v) should be slower than distributed (%v)", c300, d300)
	}
}

func TestRetrieveConcurrentSafety(t *testing.T) {
	c, err := DefaultTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("z"), 10000)
	if err := c.Origin().Publish("/pad", blob); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			region := fmt.Sprintf("region-%d", i%3)
			r, err := c.Retrieve(region, "/pad", netsim.LAN, 8)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(r.Data, blob) {
				errs <- fmt.Errorf("goroutine %d: data mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDefaultTopologyValidation(t *testing.T) {
	if _, err := DefaultTopology(0); err == nil {
		t.Fatal("zero-edge topology accepted")
	}
	c, err := DefaultTopology(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Edges()) != 5 {
		t.Fatalf("topology has %d edges, want 5", len(c.Edges()))
	}
}

func TestEdgeFailover(t *testing.T) {
	c, err := DefaultTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	blob := bytes.Repeat([]byte("f"), 9000)
	if err := c.Origin().Publish("/pad", blob); err != nil {
		t.Fatal(err)
	}
	home, err := c.EdgeFor("region-1")
	if err != nil {
		t.Fatal(err)
	}
	if home.ID != "edge-01" {
		t.Fatalf("home edge = %s", home.ID)
	}
	// Take the home edge down: retrieval must fail over, not fail.
	home.SetFailed(true)
	if !home.Failed() {
		t.Fatal("Failed() not reporting injected failure")
	}
	r, err := c.Retrieve("region-1", "/pad", netsim.WLAN, 1)
	if err != nil {
		t.Fatalf("failover retrieval failed: %v", err)
	}
	if r.EdgeID == "edge-01" {
		t.Fatal("retrieval served by a failed edge")
	}
	if !bytes.Equal(r.Data, blob) {
		t.Fatal("failover returned wrong bytes")
	}
	// Recovery restores locality.
	home.SetFailed(false)
	r, err = c.Retrieve("region-1", "/pad", netsim.WLAN, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.EdgeID != "edge-01" {
		t.Fatalf("recovered edge not preferred: served by %s", r.EdgeID)
	}
}

func TestAllEdgesDown(t *testing.T) {
	c, err := DefaultTopology(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Origin().Publish("/pad", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for _, e := range c.Edges() {
		e.SetFailed(true)
	}
	if _, err := c.Retrieve("region-0", "/pad", netsim.WLAN, 1); err == nil {
		t.Fatal("retrieval succeeded with every edge down")
	}
	if _, err := c.EdgeFor("region-0"); err == nil {
		t.Fatal("EdgeFor returned a failed edge")
	}
}

func TestMissingObjectIsTerminal(t *testing.T) {
	c, err := DefaultTopology(3)
	if err != nil {
		t.Fatal(err)
	}
	// A missing object must not be retried across every edge as if it
	// were an edge failure.
	if _, err := c.Retrieve("region-0", "/absent", netsim.WLAN, 1); err == nil {
		t.Fatal("missing object retrieved")
	}
	for _, e := range c.Edges() {
		st := e.Stats()
		if st.Misses > 1 {
			t.Fatalf("edge %s saw %d misses; missing object retried as failover", e.ID, st.Misses)
		}
	}
}

func TestPrefetchWarmsAllEdges(t *testing.T) {
	c, err := DefaultTopology(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Origin().Publish("/pad", bytes.Repeat([]byte("w"), 3000)); err != nil {
		t.Fatal(err)
	}
	c.Edges()[2].SetFailed(true)
	warmed, err := c.Prefetch("/pad")
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 3 {
		t.Fatalf("warmed %d edges, want 3 (one down)", warmed)
	}
	// Every healthy edge now serves from cache.
	for i, e := range c.Edges() {
		if i == 2 {
			continue
		}
		_, fill, miss, err := e.Fetch("/pad")
		if err != nil {
			t.Fatal(err)
		}
		if miss || fill != 0 {
			t.Fatalf("edge %s not warm after prefetch", e.ID)
		}
	}
	if _, err := c.Prefetch("/absent"); err == nil {
		t.Fatal("prefetch of unpublished object succeeded")
	}
}
