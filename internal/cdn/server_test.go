package cdn

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"fractal/internal/inp"
	"fractal/internal/netsim"
)

func startTestPADServer(t *testing.T) (addr string, store *Origin, shutdown func()) {
	t.Helper()
	store = testOrigin(t)
	if err := store.Publish("/pads/pad-x", bytes.Repeat([]byte("m"), 4096)); err != nil {
		t.Fatal(err)
	}
	srv, err := NewPADServer(store, 8, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), store, func() {
		_ = srv.Close()
		if err := <-done; err != nil {
			t.Errorf("pad server: %v", err)
		}
	}
}

func TestPADServerSession(t *testing.T) {
	addr, store, shutdown := startTestPADServer(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := inp.NewConn(conn)
	var rep inp.PADDownloadRep
	// Download by explicit URL.
	if err := c.Call(inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: "pad-x", URL: "/pads/pad-x"}, inp.MsgPADDownloadRep, &rep); err != nil {
		t.Fatal(err)
	}
	want, err := store.Get("/pads/pad-x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Module, want) {
		t.Fatal("downloaded bytes differ")
	}
	// Download by id (URL defaulting) on the same session.
	if err := c.Call(inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: "pad-x"}, inp.MsgPADDownloadRep, &rep); err != nil {
		t.Fatal(err)
	}
	// Missing object: in-band error, session continues.
	err = c.Call(inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: "ghost"}, inp.MsgPADDownloadRep, &rep)
	if err == nil || !strings.Contains(err.Error(), "peer error") {
		t.Fatalf("err = %v, want in-band error", err)
	}
	if err := c.Call(inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: "pad-x"}, inp.MsgPADDownloadRep, &rep); err != nil {
		t.Fatalf("session did not survive error: %v", err)
	}
}

func TestPADServerGarbageConnection(t *testing.T) {
	addr, _, shutdown := startTestPADServer(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("not INP at all")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// Server survives; a clean session still works.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	c := inp.NewConn(conn2)
	var rep inp.PADDownloadRep
	if err := c.Call(inp.MsgPADDownloadReq, inp.PADDownloadReq{PADID: "pad-x"}, inp.MsgPADDownloadRep, &rep); err != nil {
		t.Fatal(err)
	}
}

func TestNewPADServerValidation(t *testing.T) {
	if _, err := NewPADServer(nil, 1, nil); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewPADServer(testOrigin(t), 0, nil); err == nil {
		t.Error("zero concurrency accepted")
	}
}

func TestPADServerDoubleServeRejected(t *testing.T) {
	srv, err := NewPADServer(testOrigin(t), 1, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close accepted")
	}
}

func TestSharedServerBaseRTTAccounting(t *testing.T) {
	srv := netsim.SharedServer{Name: "s", UplinkKbps: 1e6, Rho: 0.8, BaseRTT: 25 * time.Millisecond}
	tt, err := srv.RetrievalTime(0, 1, netsim.LAN)
	if err != nil {
		t.Fatal(err)
	}
	if tt < 25*time.Millisecond {
		t.Fatalf("zero-byte retrieval %v below base RTT", tt)
	}
}
