package cdn

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fractal/internal/netsim"
	"fractal/internal/syncx"
)

// Origin is the authoritative object store behind the edgeservers (the
// application server's publishing point for PADs).
type Origin struct {
	mu      sync.RWMutex
	objects map[string][]byte
	// Server models the origin's uplink for direct (centralized) serving
	// and for edge cache-miss fills.
	Server netsim.SharedServer
}

// NewOrigin returns an empty origin with the given uplink model.
func NewOrigin(server netsim.SharedServer) (*Origin, error) {
	if err := server.Validate(); err != nil {
		return nil, fmt.Errorf("cdn: origin: %w", err)
	}
	return &Origin{objects: map[string][]byte{}, Server: server}, nil
}

// Publish stores (or replaces) an object.
func (o *Origin) Publish(path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("cdn: cannot publish empty path")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.objects[path] = append([]byte(nil), data...)
	return nil
}

// Get returns an object's bytes.
func (o *Origin) Get(path string) ([]byte, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	data, ok := o.objects[path]
	if !ok {
		return nil, fmt.Errorf("cdn: no object at %q", path)
	}
	return data, nil
}

// Paths returns the sorted published paths.
func (o *Origin) Paths() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	ps := make([]string, 0, len(o.objects))
	for p := range o.objects {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// EdgeStats counts an edgeserver's cache behaviour. OriginFills counts
// actual fills executed against the origin; CollapsedFills counts misses
// that shared another miss's in-flight fill, so under a cold-object
// stampede OriginFills stays at one per object.
type EdgeStats struct {
	Hits           int64
	Misses         int64
	OriginFills    int64
	CollapsedFills int64
}

// Edge is one CDN edgeserver: an LRU cache in a region, filling from the
// origin on miss. Edge methods are safe for concurrent use once the
// struct is built: the cache carries its own lock and the stats are
// atomic counters. The exported configuration fields must not be mutated
// after construction.
type Edge struct {
	ID     string
	Region string
	// Server models the edge's uplink toward its clients.
	Server netsim.SharedServer
	// OriginRTT and OriginKbps model the edge-to-origin path used on
	// cache misses.
	OriginRTT  time.Duration
	OriginKbps float64

	origin *Origin
	cache  *lruCache
	// sf collapses concurrent cache misses for the same path into one
	// origin fill.
	sf             syncx.Group[fillResult]
	hits           atomic.Int64
	misses         atomic.Int64
	originFills    atomic.Int64
	collapsedFills atomic.Int64
	failed         atomic.Bool
}

// fillResult is the shared outcome of one origin fill.
type fillResult struct {
	data []byte
	fill time.Duration
}

// EdgeConfig parameterizes one edgeserver.
type EdgeConfig struct {
	ID         string
	Region     string
	Server     netsim.SharedServer
	CacheBytes int64
	OriginRTT  time.Duration
	OriginKbps float64
}

// NewEdge builds an edgeserver attached to an origin.
func NewEdge(cfg EdgeConfig, origin *Origin) (*Edge, error) {
	if cfg.ID == "" || cfg.Region == "" {
		return nil, fmt.Errorf("cdn: edge needs id and region, got %q/%q", cfg.ID, cfg.Region)
	}
	if origin == nil {
		return nil, fmt.Errorf("cdn: edge %s needs an origin", cfg.ID)
	}
	if err := cfg.Server.Validate(); err != nil {
		return nil, fmt.Errorf("cdn: edge %s: %w", cfg.ID, err)
	}
	if cfg.OriginKbps <= 0 {
		return nil, fmt.Errorf("cdn: edge %s: origin bandwidth must be positive", cfg.ID)
	}
	if cfg.OriginRTT < 0 {
		return nil, fmt.Errorf("cdn: edge %s: negative origin RTT", cfg.ID)
	}
	cache, err := newLRUCache(cfg.CacheBytes)
	if err != nil {
		return nil, fmt.Errorf("cdn: edge %s: %w", cfg.ID, err)
	}
	return &Edge{
		ID: cfg.ID, Region: cfg.Region, Server: cfg.Server,
		OriginRTT: cfg.OriginRTT, OriginKbps: cfg.OriginKbps,
		origin: origin, cache: cache,
	}, nil
}

// SetFailed marks the edge as down (failure injection) or back up;
// Retrieve fails over to the next-closest healthy edge.
func (e *Edge) SetFailed(down bool) { e.failed.Store(down) }

// Failed reports whether the edge is down.
func (e *Edge) Failed() bool { return e.failed.Load() }

// Fetch returns the object, the extra time spent filling from the origin
// (zero on a cache hit), and whether it was a miss.
func (e *Edge) Fetch(path string) (data []byte, fill time.Duration, miss bool, err error) {
	if e.failed.Load() {
		return nil, 0, false, fmt.Errorf("cdn: edge %s is down", e.ID)
	}
	if data, ok := e.cache.Get(path); ok {
		e.hits.Add(1)
		return data, 0, false, nil
	}
	e.misses.Add(1)
	res, err, joined := e.sf.Do(path, func() (fillResult, error) {
		// Double-check under leadership: a concurrent miss may have
		// completed its fill between our miss and this call, so each path
		// is filled from the origin at most once per residency.
		if data, ok := e.cache.Get(path); ok {
			return fillResult{data: data}, nil
		}
		return e.fillFromOrigin(path)
	})
	if joined {
		e.collapsedFills.Add(1)
	}
	if err != nil {
		return nil, 0, true, err
	}
	return res.data, res.fill, true, nil
}

// fillFromOrigin fetches one object from the origin, caches it, and
// accounts the simulated fill time over the edge-to-origin path.
func (e *Edge) fillFromOrigin(path string) (fillResult, error) {
	e.originFills.Add(1)
	data, err := e.origin.Get(path)
	if err != nil {
		return fillResult{}, fmt.Errorf("cdn: edge %s: %w", e.ID, err)
	}
	e.cache.Put(path, data)
	secs := float64(len(data)) * 8.0 / (e.OriginKbps * 1000.0)
	fillTransfer, err := netsim.Seconds(secs)
	if err != nil {
		return fillResult{}, fmt.Errorf("cdn: edge %s origin fill: %w", e.ID, err)
	}
	return fillResult{data: data, fill: e.OriginRTT + fillTransfer}, nil
}

// Stats returns the edge's hit/miss/fill counters.
func (e *Edge) Stats() EdgeStats {
	return EdgeStats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		OriginFills:    e.originFills.Load(),
		CollapsedFills: e.collapsedFills.Load(),
	}
}

// CDN is the distribution network: an origin plus edgeservers. It
// implements the paper's "it is the CDN's responsibility to find the
// closest edgeserver which holds the PAD, and to redirect the request".
// CDN is safe for concurrent use; the edge list is guarded by an RWMutex
// and each Edge synchronizes independently.
type CDN struct {
	origin *Origin
	mu     sync.RWMutex
	edges  []*Edge
}

// New builds a CDN over an origin.
func New(origin *Origin) (*CDN, error) {
	if origin == nil {
		return nil, fmt.Errorf("cdn: nil origin")
	}
	return &CDN{origin: origin}, nil
}

// Origin exposes the publishing point.
func (c *CDN) Origin() *Origin { return c.origin }

// AddEdge registers an edgeserver.
func (c *CDN) AddEdge(cfg EdgeConfig) (*Edge, error) {
	e, err := NewEdge(cfg, c.origin)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, existing := range c.edges {
		if existing.ID == e.ID {
			return nil, fmt.Errorf("cdn: duplicate edge id %q", e.ID)
		}
	}
	c.edges = append(c.edges, e)
	return e, nil
}

// Edges returns the registered edgeservers.
func (c *CDN) Edges() []*Edge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Edge(nil), c.edges...)
}

// EdgeFor returns the closest healthy edgeserver for a client region: an
// edge in the same region if one exists, otherwise the one with the lowest
// client-facing base RTT. Ties break deterministically by id.
func (c *CDN) EdgeFor(region string) (*Edge, error) {
	ranked, err := c.rankedEdges(region)
	if err != nil {
		return nil, err
	}
	return ranked[0], nil
}

// rankedEdges orders healthy edges by preference for a region: same-region
// edges first (by id), then ascending base RTT (ties by id).
func (c *CDN) rankedEdges(region string) ([]*Edge, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.edges) == 0 {
		return nil, fmt.Errorf("cdn: no edgeservers registered")
	}
	var healthy []*Edge
	for _, e := range c.edges {
		if !e.Failed() {
			healthy = append(healthy, e)
		}
	}
	if len(healthy) == 0 {
		return nil, fmt.Errorf("cdn: every edgeserver is down")
	}
	sort.SliceStable(healthy, func(i, j int) bool {
		a, b := healthy[i], healthy[j]
		aHome, bHome := a.Region == region, b.Region == region
		if aHome != bHome {
			return aHome
		}
		if a.Server.BaseRTT != b.Server.BaseRTT {
			return a.Server.BaseRTT < b.Server.BaseRTT
		}
		return a.ID < b.ID
	})
	return healthy, nil
}

// Retrieval is the accounting result of one simulated object download.
type Retrieval struct {
	Data     []byte
	EdgeID   string
	Time     time.Duration
	CacheHit bool
}

// Retrieve fetches path for a client in region over the given access link,
// with `concurrent` simultaneous downloads sharing the chosen edge. The
// returned time combines edge contention, the client link, and any origin
// fill. If the preferred edge fails mid-flight the request fails over to
// the next-closest healthy edge; only a missing object is terminal.
func (c *CDN) Retrieve(region, path string, client netsim.Link, concurrent int) (Retrieval, error) {
	ranked, err := c.rankedEdges(region)
	if err != nil {
		return Retrieval{}, err
	}
	var lastErr error
	for _, edge := range ranked {
		data, fill, miss, err := edge.Fetch(path)
		if err != nil {
			if edge.Failed() {
				lastErr = err
				continue // fail over to the next edge
			}
			return Retrieval{}, err // object-level error: no edge can help
		}
		t, err := edge.Server.RetrievalTime(int64(len(data)), concurrent, client)
		if err != nil {
			return Retrieval{}, fmt.Errorf("cdn: edge %s retrieval: %w", edge.ID, err)
		}
		return Retrieval{Data: data, EdgeID: edge.ID, Time: t + fill, CacheHit: !miss}, nil
	}
	return Retrieval{}, fmt.Errorf("cdn: all edges failed for %s: %w", path, lastErr)
}

// Prefetch pushes an object into every healthy edge cache, as a publisher
// does after uploading new PAD modules so first clients hit warm caches.
// It returns the number of edges warmed.
func (c *CDN) Prefetch(path string) (int, error) {
	if _, err := c.origin.Get(path); err != nil {
		return 0, err
	}
	warmed := 0
	for _, e := range c.Edges() {
		if e.Failed() {
			continue
		}
		if _, _, _, err := e.Fetch(path); err != nil {
			return warmed, fmt.Errorf("cdn: prefetch to %s: %w", e.ID, err)
		}
		warmed++
	}
	return warmed, nil
}

// RetrieveCentralized fetches path directly from the origin with
// `concurrent` simultaneous downloads sharing its uplink — the baseline of
// Figure 9(b).
func (c *CDN) RetrieveCentralized(path string, client netsim.Link, concurrent int) (Retrieval, error) {
	data, err := c.origin.Get(path)
	if err != nil {
		return Retrieval{}, err
	}
	t, err := c.origin.Server.RetrievalTime(int64(len(data)), concurrent, client)
	if err != nil {
		return Retrieval{}, fmt.Errorf("cdn: centralized retrieval: %w", err)
	}
	return Retrieval{Data: data, EdgeID: "origin", Time: t, CacheHit: false}, nil
}

// DefaultTopology builds the experimental topology: an origin with a
// modest uplink (the centralized PAD server) and `edges` edgeservers
// spread across regions with large uplinks, as PlanetLab nodes close to
// clients. Region names are "region-0" .. "region-(edges-1)".
func DefaultTopology(edges int) (*CDN, error) {
	if edges < 1 {
		return nil, fmt.Errorf("cdn: topology needs >= 1 edge, got %d", edges)
	}
	origin, err := NewOrigin(netsim.SharedServer{
		Name: "origin", UplinkKbps: 10000, Rho: netsim.DefaultRho, BaseRTT: 40 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	c, err := New(origin)
	if err != nil {
		return nil, err
	}
	for i := 0; i < edges; i++ {
		_, err := c.AddEdge(EdgeConfig{
			ID:     fmt.Sprintf("edge-%02d", i),
			Region: fmt.Sprintf("region-%d", i),
			Server: netsim.SharedServer{
				Name:       fmt.Sprintf("edge-%02d", i),
				UplinkKbps: 100000,
				Rho:        netsim.DefaultRho,
				BaseRTT:    5 * time.Millisecond,
			},
			CacheBytes: 64 << 20,
			OriginRTT:  40 * time.Millisecond,
			OriginKbps: 10000,
		})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}
