package cdn

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"fractal/internal/arena"
	"fractal/internal/inp"
)

// PADServer is a network front end serving PAD_DOWNLOAD_REQ over INP from
// an object store. One instance over the origin is the paper's
// "centralized PAD server"; one per edge store is an edgeserver daemon.
// PADServer serves each connection on its own goroutine and is safe for
// concurrent use: its own state is immutable after construction and the
// backing store synchronizes itself.
type PADServer struct {
	store *Origin
	sem   chan struct{}
	logf  func(string, ...interface{})
	idle  time.Duration

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// SetIdleTimeout bounds the gap between download requests on each
// session; it must be called before Serve.
func (s *PADServer) SetIdleTimeout(d time.Duration) { s.idle = d }

// NewPADServer wraps an object store.
func NewPADServer(store *Origin, maxConcurrent int, logf func(string, ...interface{})) (*PADServer, error) {
	if store == nil {
		return nil, errors.New("cdn: PAD server needs a store")
	}
	if maxConcurrent < 1 {
		return nil, fmt.Errorf("cdn: PAD server concurrency must be >= 1, got %d", maxConcurrent)
	}
	if logf == nil {
		logf = log.Printf
	}
	return &PADServer{store: store, sem: make(chan struct{}, maxConcurrent), logf: logf}, nil
}

// Serve accepts download sessions until Close.
func (s *PADServer) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("cdn: PAD server already closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("cdn: accept: %w", err)
		}
		s.sem <- struct{}{}
		s.wg.Add(1)
		go func() {
			defer func() {
				<-s.sem
				s.wg.Done()
			}()
			defer conn.Close()
			if err := s.ServeConn(conn); err != nil && !errors.Is(err, io.EOF) {
				s.logf("cdn: download session from %s: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// Close stops accepting and waits for in-flight downloads.
func (s *PADServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

// ServeConn answers PAD_DOWNLOAD_REQ messages until the peer disconnects.
// The connection's buffers come from one arena session, and a request
// advertising WireVersion >= 2 switches replies to the INP binary fast
// path, which ships the module bytes raw (no base64) in a zero-copy
// writev vector.
func (s *PADServer) ServeConn(rw net.Conn) error {
	sess := arena.AcquireSession()
	defer sess.Release()
	c := inp.NewConnSession(rw, sess)
	for {
		if s.idle > 0 {
			//fractal:allow simtime — real socket read deadline, not simulated time
			_ = rw.SetReadDeadline(time.Now().Add(s.idle))
		}
		var req inp.PADDownloadReq
		if err := c.RecvInto(inp.MsgPADDownloadReq, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return io.EOF
			}
			return fmt.Errorf("reading PAD_DOWNLOAD_REQ: %w", err)
		}
		if req.WireVersion >= inp.Version2 {
			c.EnableBinary()
		}
		path := req.URL
		if path == "" {
			path = "/pads/" + req.PADID
		}
		data, err := s.store.Get(path)
		if err != nil {
			_ = c.SendError(err.Error())
			continue
		}
		if err := c.Send(inp.MsgPADDownloadRep, &inp.PADDownloadRep{PADID: req.PADID, Module: data}); err != nil {
			return fmt.Errorf("sending PAD_DOWNLOAD_REP: %w", err)
		}
	}
}
