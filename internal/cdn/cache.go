// Package cdn is Fractal's content-distribution-network substrate. The
// paper deploys PADs on PlanetLab nodes acting as CDN edgeservers and
// compares against a single centralized PAD server (Figure 9(b)); this
// package reproduces both: an origin holding every published object,
// edgeservers with byte-bounded LRU caches that pull from the origin on
// miss, a region-based redirector choosing the closest edge, and the
// netsim bandwidth-sharing model for retrieval-time accounting.
package cdn

import (
	"container/list"
	"fmt"
	"sync"
)

// lruCache is a byte-capacity-bounded LRU of immutable blobs. It is safe
// for concurrent use.
type lruCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	data []byte
}

// newLRUCache builds a cache holding at most capacity bytes of values.
func newLRUCache(capacity int64) (*lruCache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("cdn: cache capacity must be positive, got %d", capacity)
	}
	return &lruCache{
		capacity: capacity,
		order:    list.New(),
		entries:  map[string]*list.Element{},
	}, nil
}

// Get returns the cached blob and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put inserts a blob, evicting least-recently-used entries as needed. A
// blob larger than the whole cache is not cached (and no eviction occurs).
func (c *lruCache) Put(key string, data []byte) {
	if int64(len(data)) > c.capacity {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(old.data))
		old.data = data
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, data: data})
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, ent.key)
		c.used -= int64(len(ent.data))
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the cached byte total.
func (c *lruCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}
