//go:build race

package netsim

// raceEnabled reports that the race detector is instrumenting this build;
// its shadow-memory bookkeeping allocates, so exact allocs-per-run
// assertions are meaningless and are skipped.
const raceEnabled = true
