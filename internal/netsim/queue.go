package netsim

import "time"

// EventQueue is the fleet-scale discrete-event timeline: a priority queue
// of (virtual time, payload) pairs with no per-event allocation. Where
// VirtualClock carries a closure per event — convenient for the paper's
// per-device models, but a heap allocation and an indirect call per
// schedule — EventQueue carries a plain int32 payload the caller maps onto
// its own state tables, so a million pending sessions cost three flat
// arrays and nothing else.
//
// The heap is 4-ary and struct-of-arrays: timestamps, tie-break sequence
// numbers, and payloads live in parallel slices, keeping the comparison
// key dense in cache during sifts. Ties execute in Push order (seq is a
// monotonic counter), so a run is a deterministic function of its pushes.
//
// An EventQueue is confined to one simulation goroutine, like the event
// loop of VirtualClock; it performs no locking.
type EventQueue struct {
	at    []time.Duration
	seq   []uint32
	id    []int32
	n     int
	seqC  uint32
	moves uint64
}

// NewEventQueue returns a queue with storage for capacity pending events
// preallocated; it grows beyond that if needed. A zero EventQueue is also
// ready to use.
func NewEventQueue(capacity int) *EventQueue {
	if capacity < 0 {
		capacity = 0
	}
	return &EventQueue{
		at:  make([]time.Duration, 0, capacity),
		seq: make([]uint32, 0, capacity),
		id:  make([]int32, 0, capacity),
	}
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int { return q.n }

// before is the heap order: virtual time, then push order. seq wraps at
// 2^32 pushes; runs beyond that would need the counter widened, but a
// tie across a full wrap additionally requires 2^32 events pending at one
// identical timestamp, far past the queue's design envelope.
func (q *EventQueue) before(i, j int) bool {
	if q.at[i] != q.at[j] {
		return q.at[i] < q.at[j]
	}
	return q.seq[i] < q.seq[j]
}

// Push schedules payload id at virtual time at.
//
//fractal:hotpath one push per session arrival and per service completion
func (q *EventQueue) Push(at time.Duration, id int32) {
	i := q.n
	if i < len(q.at) {
		q.at[i], q.seq[i], q.id[i] = at, q.seqC, id
	} else {
		q.at = append(q.at, at)
		q.seq = append(q.seq, q.seqC)
		q.id = append(q.id, id)
	}
	q.seqC++
	q.n++
	q.siftUp(i)
}

// Pop removes and returns the earliest pending event. ok is false when the
// queue is empty.
//
//fractal:hotpath the harness event loop pops once per event
func (q *EventQueue) Pop() (at time.Duration, id int32, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	at, id = q.at[0], q.id[0]
	last := q.n - 1
	q.swap(0, last)
	q.n = last
	if last > 0 {
		q.siftDown(0)
	}
	return at, id, true
}

// Peek returns the earliest pending event without removing it.
func (q *EventQueue) Peek() (at time.Duration, id int32, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	return q.at[0], q.id[0], true
}

func (q *EventQueue) swap(i, j int) {
	q.at[i], q.at[j] = q.at[j], q.at[i]
	q.seq[i], q.seq[j] = q.seq[j], q.seq[i]
	q.id[i], q.id[j] = q.id[j], q.id[i]
}

// siftUp restores the heap invariant from index i towards the root.
func (q *EventQueue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if !q.before(i, p) {
			break
		}
		q.swap(i, p)
		q.moves++
		i = p
	}
}

// siftDown restores the heap invariant from index i towards the leaves.
func (q *EventQueue) siftDown(i int) {
	n := q.n
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if q.before(j, best) {
				best = j
			}
		}
		if !q.before(best, i) {
			break
		}
		q.swap(i, best)
		q.moves++
		i = best
	}
}
