package netsim

import (
	"fmt"
	"time"
)

// SharedServer models a server whose uplink bandwidth is shared fairly by
// all concurrent downloads. It captures the contention effect behind the
// paper's Figure 9(b): a centralized PAD server's per-client retrieval time
// grows with client count once the shared uplink, divided N ways, drops
// below each client's own access bandwidth, while CDN edgeservers keep the
// per-client share above that threshold.
type SharedServer struct {
	Name       string
	UplinkKbps float64       // raw uplink bandwidth
	Rho        float64       // application-level efficiency, as for Link
	BaseRTT    time.Duration // network distance from clients to this server
}

// Validate reports whether the server parameters are usable.
func (s SharedServer) Validate() error {
	if s.UplinkKbps <= 0 {
		return fmt.Errorf("netsim: server %q: uplink must be positive, got %v", s.Name, s.UplinkKbps)
	}
	if s.Rho <= 0 || s.Rho > 1 {
		return fmt.Errorf("netsim: server %q: rho must be in (0,1], got %v", s.Name, s.Rho)
	}
	if s.BaseRTT < 0 {
		return fmt.Errorf("netsim: server %q: negative RTT %v", s.Name, s.BaseRTT)
	}
	return nil
}

// RetrievalTime returns the time for one client among `concurrent`
// simultaneous downloaders to fetch n bytes. The client sees the smaller of
// its own effective access bandwidth and a fair 1/concurrent share of the
// server's effective uplink.
func (s SharedServer) RetrievalTime(n int64, concurrent int, client Link) (time.Duration, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	if err := client.Validate(); err != nil {
		return 0, err
	}
	if concurrent < 1 {
		return 0, fmt.Errorf("netsim: concurrency must be >= 1, got %d", concurrent)
	}
	if n < 0 {
		return 0, fmt.Errorf("netsim: negative transfer size %d", n)
	}
	share := s.UplinkKbps * s.Rho / float64(concurrent)
	eff := client.EffectiveKbps()
	if share < eff {
		eff = share
	}
	secs := float64(n) * 8.0 / (eff * 1000.0)
	d, err := Seconds(secs)
	if err != nil {
		return 0, err
	}
	return s.BaseRTT + client.RTT + d, nil
}

// ServiceQueue models a compute-bound service with a fixed number of
// parallel workers and deterministic per-request service time; used for the
// adaptation proxy's negotiation capacity (Figure 9(a)).
type ServiceQueue struct {
	Workers int
	Service time.Duration
}

// Validate reports whether the queue parameters are usable.
func (q ServiceQueue) Validate() error {
	if q.Workers < 1 {
		return fmt.Errorf("netsim: service queue needs >= 1 worker, got %d", q.Workers)
	}
	if q.Service < 0 {
		return fmt.Errorf("netsim: negative service time %v", q.Service)
	}
	return nil
}

// MeanSojourn returns the average time a request spends in the system when
// n requests arrive simultaneously: requests are served in arrival order in
// batches of Workers, so request i (0-based) completes at
// (i/Workers + 1) * Service.
func (q ServiceQueue) MeanSojourn(n int) (time.Duration, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if n < 1 {
		return 0, fmt.Errorf("netsim: request count must be >= 1, got %d", n)
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		total += time.Duration(i/q.Workers+1) * q.Service
	}
	return total / time.Duration(n), nil
}
