package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVirtualClockRunsEventsInOrder(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	c.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	c.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	c.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	end := c.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", order)
	}
}

func TestVirtualClockTieBreakPreservesScheduleOrder(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO at equal timestamps)", i, v, i)
		}
	}
}

func TestVirtualClockNestedScheduling(t *testing.T) {
	c := NewVirtualClock()
	var fired []time.Duration
	c.Schedule(time.Second, func() {
		fired = append(fired, c.Now())
		c.Schedule(2*time.Second, func() { fired = append(fired, c.Now()) })
	})
	end := c.Run()
	if end != 3*time.Second {
		t.Fatalf("end = %v, want 3s", end)
	}
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired at %v, want [1s 3s]", fired)
	}
}

func TestVirtualClockNegativeDelayClamped(t *testing.T) {
	c := NewVirtualClock()
	ran := false
	c.Schedule(-time.Second, func() { ran = true })
	if end := c.Run(); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
	if !ran {
		t.Fatal("event with negative delay did not run")
	}
}

func TestVirtualClockStepAndPending(t *testing.T) {
	c := NewVirtualClock()
	c.Schedule(time.Millisecond, func() {})
	c.Schedule(2*time.Millisecond, func() {})
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
	if !c.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if c.Pending() != 1 {
		t.Fatalf("pending after step = %d, want 1", c.Pending())
	}
	c.Run()
	if c.Step() {
		t.Fatal("Step returned true on empty queue")
	}
}

func TestSecondsRejectsInvalid(t *testing.T) {
	for _, s := range []float64{-1, -0.001} {
		if _, err := Seconds(s); err == nil {
			t.Errorf("Seconds(%v) accepted negative", s)
		}
	}
	nan := 0.0
	nan = nan / nan // silence constant-division checks
	if _, err := Seconds(nan); err == nil {
		t.Error("Seconds(NaN) accepted")
	}
	if d, err := Seconds(1.5); err != nil || d != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v, %v", d, err)
	}
}

func TestLinkTransferTime(t *testing.T) {
	// 1 MB over effective 0.8*1 Mbps should take ~10 seconds + RTT.
	l := Link{Type: "test", BandwidthKbps: 1000, RTT: 100 * time.Millisecond, Rho: 0.8}
	d, err := l.TransferTime(1000000)
	if err != nil {
		t.Fatal(err)
	}
	want := 10*time.Second + 100*time.Millisecond
	if d != want {
		t.Fatalf("transfer = %v, want %v", d, want)
	}
}

func TestLinkValidation(t *testing.T) {
	cases := []Link{
		{Type: "bw0", BandwidthKbps: 0, Rho: 0.8},
		{Type: "bwneg", BandwidthKbps: -5, Rho: 0.8},
		{Type: "rho0", BandwidthKbps: 100, Rho: 0},
		{Type: "rho2", BandwidthKbps: 100, Rho: 2},
		{Type: "rtt", BandwidthKbps: 100, Rho: 0.5, RTT: -time.Second},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("link %q validated but is invalid", l.Type)
		}
	}
	if err := LAN.Validate(); err != nil {
		t.Errorf("standard LAN link invalid: %v", err)
	}
}

func TestLinkTransferNegativeBytes(t *testing.T) {
	if _, err := LAN.TransferTime(-1); err == nil {
		t.Fatal("negative byte count accepted")
	}
}

func TestStandardLinksOrdering(t *testing.T) {
	// Bandwidth ordering LAN > WLAN > Bluetooth > Dialup must hold, since
	// the case study's protocol selection depends on it.
	if !(LAN.BandwidthKbps > WLAN.BandwidthKbps &&
		WLAN.BandwidthKbps > Bluetooth.BandwidthKbps &&
		Bluetooth.BandwidthKbps > Dialup.BandwidthKbps) {
		t.Fatal("standard link bandwidth ordering broken")
	}
	const size = 135 * 1024
	tLAN, _ := LAN.TransferTime(size)
	tBT, _ := Bluetooth.TransferTime(size)
	if tLAN >= tBT {
		t.Fatalf("LAN transfer %v not faster than Bluetooth %v", tLAN, tBT)
	}
}

func TestLinkByType(t *testing.T) {
	for _, nt := range []NetworkType{NetLAN, NetWLAN, NetBluetooth, NetDialup} {
		l, err := LinkByType(nt)
		if err != nil {
			t.Fatalf("LinkByType(%q): %v", nt, err)
		}
		if l.Type != nt {
			t.Fatalf("LinkByType(%q).Type = %q", nt, l.Type)
		}
	}
	if _, err := LinkByType("carrier-pigeon"); err == nil {
		t.Fatal("unknown network type accepted")
	}
}

func TestDeviceScaleCompute(t *testing.T) {
	// A 1-second job on the 500 MHz reference takes 1.25s on the 400 MHz
	// PDA and 0.25s on the 2 GHz desktop.
	got, err := PDA.Device.ScaleCompute(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1250*time.Millisecond {
		t.Fatalf("PDA scale = %v, want 1.25s", got)
	}
	got, err = Desktop.Device.ScaleCompute(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != 250*time.Millisecond {
		t.Fatalf("Desktop scale = %v, want 250ms", got)
	}
}

func TestDeviceValidation(t *testing.T) {
	bad := Device{Name: "bad", CPUMHz: 0, MemMB: 64}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-MHz device validated")
	}
	bad = Device{Name: "bad", CPUMHz: 100, MemMB: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-memory device validated")
	}
	if _, err := bad.ScaleCompute(time.Second); err == nil {
		t.Fatal("ScaleCompute on invalid device succeeded")
	}
	if _, err := Desktop.Device.ScaleCompute(-time.Second); err == nil {
		t.Fatal("negative reference time accepted")
	}
}

func TestStationsMatchPaperPlatform(t *testing.T) {
	ss := Stations()
	if len(ss) != 3 {
		t.Fatalf("got %d stations, want 3", len(ss))
	}
	if ss[0].Device.Name != "Desktop" || ss[0].Link.Type != NetLAN {
		t.Errorf("station 0 = %v/%v, want Desktop/LAN", ss[0].Device.Name, ss[0].Link.Type)
	}
	if ss[1].Device.Name != "Laptop" || ss[1].Link.Type != NetWLAN {
		t.Errorf("station 1 = %v/%v, want Laptop/WLAN", ss[1].Device.Name, ss[1].Link.Type)
	}
	if ss[2].Device.Name != "PDA" || ss[2].Link.Type != NetBluetooth {
		t.Errorf("station 2 = %v/%v, want PDA/Bluetooth", ss[2].Device.Name, ss[2].Link.Type)
	}
	if ss[2].Device.OS != OSWinCE42 {
		t.Errorf("PDA OS = %v, want WinCE4.2", ss[2].Device.OS)
	}
}

func TestSharedServerContention(t *testing.T) {
	srv := SharedServer{Name: "central", UplinkKbps: 10000, Rho: 0.8, BaseRTT: 10 * time.Millisecond}
	// One client on a fast LAN: client link is not the bottleneck at low
	// concurrency; at 300 clients the shared uplink dominates and the
	// retrieval time must grow roughly linearly.
	t1, err := srv.RetrievalTime(50*1024, 1, LAN)
	if err != nil {
		t.Fatal(err)
	}
	t300, err := srv.RetrievalTime(50*1024, 300, LAN)
	if err != nil {
		t.Fatal(err)
	}
	if t300 <= t1 {
		t.Fatalf("contended retrieval %v not slower than solo %v", t300, t1)
	}
	if ratio := t300.Seconds() / t1.Seconds(); ratio < 10 {
		t.Fatalf("contention ratio %v too small; uplink sharing not modeled", ratio)
	}
}

func TestSharedServerClientBottleneck(t *testing.T) {
	// A huge-uplink server: the client's own slow link dominates, so
	// concurrency barely matters (the CDN side of Figure 9(b)).
	srv := SharedServer{Name: "edge", UplinkKbps: 1e6, Rho: 0.8}
	t1, err := srv.RetrievalTime(50*1024, 1, Bluetooth)
	if err != nil {
		t.Fatal(err)
	}
	t10, err := srv.RetrievalTime(50*1024, 10, Bluetooth)
	if err != nil {
		t.Fatal(err)
	}
	if t10 != t1 {
		t.Fatalf("client-bound retrieval changed with concurrency: %v vs %v", t1, t10)
	}
}

func TestSharedServerValidation(t *testing.T) {
	bad := SharedServer{Name: "bad", UplinkKbps: 0, Rho: 0.8}
	if _, err := bad.RetrievalTime(1, 1, LAN); err == nil {
		t.Fatal("zero-uplink server accepted")
	}
	good := SharedServer{Name: "ok", UplinkKbps: 100, Rho: 0.8}
	if _, err := good.RetrievalTime(1, 0, LAN); err == nil {
		t.Fatal("zero concurrency accepted")
	}
	if _, err := good.RetrievalTime(-1, 1, LAN); err == nil {
		t.Fatal("negative size accepted")
	}
	badRho := SharedServer{Name: "rho", UplinkKbps: 100, Rho: 1.5}
	if _, err := badRho.RetrievalTime(1, 1, LAN); err == nil {
		t.Fatal("rho > 1 accepted")
	}
}

func TestServiceQueueMeanSojourn(t *testing.T) {
	q := ServiceQueue{Workers: 2, Service: 10 * time.Millisecond}
	// 4 simultaneous requests, 2 workers: completions 10,10,20,20 → mean 15ms.
	got, err := q.MeanSojourn(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15*time.Millisecond {
		t.Fatalf("mean sojourn = %v, want 15ms", got)
	}
	// With as many workers as requests the mean equals the service time.
	q = ServiceQueue{Workers: 8, Service: 7 * time.Millisecond}
	got, err = q.MeanSojourn(8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7*time.Millisecond {
		t.Fatalf("uncontended sojourn = %v, want 7ms", got)
	}
}

func TestServiceQueueValidation(t *testing.T) {
	if _, err := (ServiceQueue{Workers: 0, Service: time.Millisecond}).MeanSojourn(1); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := (ServiceQueue{Workers: 1, Service: -time.Millisecond}).MeanSojourn(1); err == nil {
		t.Fatal("negative service accepted")
	}
	if _, err := (ServiceQueue{Workers: 1, Service: time.Millisecond}).MeanSojourn(0); err == nil {
		t.Fatal("zero requests accepted")
	}
}

// Property: transfer time is monotone non-decreasing in byte count for any
// valid link.
func TestTransferTimeMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a%10_000_000), int64(b%10_000_000)
		if x > y {
			x, y = y, x
		}
		tx, err1 := WLAN.TransferTime(x)
		ty, err2 := WLAN.TransferTime(y)
		return err1 == nil && err2 == nil && tx <= ty
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a faster device never takes longer than a slower one on the
// same reference workload.
func TestScaleComputeMonotoneProperty(t *testing.T) {
	f := func(mhzA, mhzB uint16, ms uint16) bool {
		a := Device{Name: "a", CPUMHz: float64(mhzA%4000) + 1, MemMB: 64}
		b := Device{Name: "b", CPUMHz: float64(mhzB%4000) + 1, MemMB: 64}
		ref := time.Duration(ms) * time.Millisecond
		ta, err1 := a.ScaleCompute(ref)
		tb, err2 := b.ScaleCompute(ref)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.CPUMHz >= b.CPUMHz {
			return ta <= tb
		}
		return ta >= tb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean sojourn never decreases as simultaneous load increases.
func TestMeanSojournMonotoneProperty(t *testing.T) {
	q := ServiceQueue{Workers: 4, Service: 3 * time.Millisecond}
	prev := time.Duration(0)
	for n := 1; n <= 64; n++ {
		m, err := q.MeanSojourn(n)
		if err != nil {
			t.Fatal(err)
		}
		if m < prev {
			t.Fatalf("sojourn decreased at n=%d: %v < %v", n, m, prev)
		}
		prev = m
	}
}

func TestLinkLossRate(t *testing.T) {
	clean := Link{Type: "t", BandwidthKbps: 1000, Rho: 0.8}
	lossy := clean
	lossy.LossRate = 0.5
	tc, err := clean.TransferTime(100000)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := lossy.TransferTime(100000)
	if err != nil {
		t.Fatal(err)
	}
	if tl != 2*tc {
		t.Fatalf("50%% loss transfer %v, want double the clean %v", tl, tc)
	}
	bad := clean
	bad.LossRate = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("loss rate 1 accepted")
	}
	bad.LossRate = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative loss accepted")
	}
	// Standard links remain clean by default.
	if Bluetooth.LossRate != 0 {
		t.Fatal("standard link has nonzero loss")
	}
}
