package netsim

import (
	"fmt"
	"time"
)

// NetworkType identifies the connection medium of a client, matching the
// paper's experimental platform (Figure 7).
type NetworkType string

// Network types used by the paper's evaluation.
const (
	NetLAN       NetworkType = "LAN"
	NetWLAN      NetworkType = "WLAN"
	NetBluetooth NetworkType = "Bluetooth"
	NetDialup    NetworkType = "Dialup" // extension: slow-link ablations
)

// DefaultRho is the application-level available-bandwidth fraction the
// paper approximates for its deployments (Section 3.4.2: "usually between
// 0.6 to 0.8 ... we approximate ρ as 0.8").
const DefaultRho = 0.8

// Link models a network connection at the application level: raw bandwidth,
// round-trip latency, and the fraction ρ of raw bandwidth actually usable
// by the application.
type Link struct {
	Type          NetworkType
	BandwidthKbps float64 // raw link bandwidth in kilobits per second
	RTT           time.Duration
	Rho           float64 // application-level efficiency in (0, 1]
	// LossRate is the fraction of frames lost and retransmitted on the
	// medium (wireless interference, Bluetooth co-channel noise); the
	// effective bandwidth scales by (1 - LossRate). Zero for clean links.
	LossRate float64
}

// Validate reports whether the link parameters are usable.
func (l Link) Validate() error {
	if l.BandwidthKbps <= 0 {
		return fmt.Errorf("netsim: link %q: bandwidth must be positive, got %v", l.Type, l.BandwidthKbps)
	}
	if l.Rho <= 0 || l.Rho > 1 {
		return fmt.Errorf("netsim: link %q: rho must be in (0,1], got %v", l.Type, l.Rho)
	}
	if l.RTT < 0 {
		return fmt.Errorf("netsim: link %q: negative RTT %v", l.Type, l.RTT)
	}
	if l.LossRate < 0 || l.LossRate >= 1 {
		return fmt.Errorf("netsim: link %q: loss rate %v out of [0,1)", l.Type, l.LossRate)
	}
	return nil
}

// EffectiveKbps returns the application-visible bandwidth ρ·bw·(1-loss).
func (l Link) EffectiveKbps() float64 {
	return l.BandwidthKbps * l.Rho * (1 - l.LossRate)
}

// TransferTime returns the simulated time to move n bytes across the link:
// one RTT of setup plus serialization at the effective bandwidth. This is
// the first and last terms of the paper's Equation 3.
func (l Link) TransferTime(n int64) (time.Duration, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("netsim: negative transfer size %d", n)
	}
	secs := float64(n) * 8.0 / (l.EffectiveKbps() * 1000.0)
	d, err := Seconds(secs)
	if err != nil {
		return 0, fmt.Errorf("netsim: transfer of %d bytes: %w", n, err)
	}
	return l.RTT + d, nil
}

// Standard links matching the paper's platform. Bandwidths: 100 Mbps
// switched Ethernet, 11 Mbps 802.11b, 723 kbps Bluetooth 1.1; RTTs are
// representative medium values.
var (
	LAN       = Link{Type: NetLAN, BandwidthKbps: 100000, RTT: 300 * time.Microsecond, Rho: DefaultRho}
	WLAN      = Link{Type: NetWLAN, BandwidthKbps: 11000, RTT: 3 * time.Millisecond, Rho: DefaultRho}
	Bluetooth = Link{Type: NetBluetooth, BandwidthKbps: 723, RTT: 30 * time.Millisecond, Rho: DefaultRho}
	Dialup    = Link{Type: NetDialup, BandwidthKbps: 56, RTT: 150 * time.Millisecond, Rho: 0.6}
)

// LinkByType returns the standard link model for a network type.
func LinkByType(t NetworkType) (Link, error) {
	switch t {
	case NetLAN:
		return LAN, nil
	case NetWLAN:
		return WLAN, nil
	case NetBluetooth:
		return Bluetooth, nil
	case NetDialup:
		return Dialup, nil
	default:
		return Link{}, fmt.Errorf("netsim: unknown network type %q", t)
	}
}
