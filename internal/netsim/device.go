package netsim

import (
	"fmt"
	"time"
)

// OSType identifies a client operating system, one axis of the paper's
// normalized ratio matrix B.
type OSType string

// CPUType identifies a processor family, one axis of matrix A. The paper's
// platform uses P (Intel PXA255), D (Pentium IV 2.0 GHz), L (Pentium IV
// 3.06 GHz).
type CPUType string

// Operating systems and processors from the paper's platform (Figure 7)
// plus the motivating WinMedia/Kinoma example (Section 3.4.2).
const (
	OSWinCE42     OSType = "WinCE4.2"
	OSFedoraCore2 OSType = "FedoraCore2"
	OSPalmOS      OSType = "PalmOS"

	CPUPXA255 CPUType = "PXA255"
	CPUP4     CPUType = "PentiumIV"
)

// StdCPUMHz is the reference processor speed of the paper's linear model:
// "a standard processor speed, Std_cpu, 500MHz Pentium IV in our
// implementation".
const StdCPUMHz = 500.0

// StdBandwidthKbps is the reference bandwidth of the linear model: "a
// standard network bandwidth, Std_bandwidth, 1Mbps".
const StdBandwidthKbps = 1000.0

// Device describes a client host's hardware and software, the source of the
// client's DevMeta during negotiation.
type Device struct {
	Name   string
	CPU    CPUType
	CPUMHz float64
	MemMB  int
	OS     OSType
}

// Validate reports whether the device parameters are usable.
func (d Device) Validate() error {
	if d.CPUMHz <= 0 {
		return fmt.Errorf("netsim: device %q: CPU speed must be positive, got %v", d.Name, d.CPUMHz)
	}
	if d.MemMB <= 0 {
		return fmt.Errorf("netsim: device %q: memory must be positive, got %d", d.Name, d.MemMB)
	}
	return nil
}

// ScaleCompute converts a compute cost measured on the standard 500 MHz
// reference processor into this device's simulated cost using the paper's
// linear model: cost scales inversely with clock speed.
func (d Device) ScaleCompute(refStd time.Duration) (time.Duration, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	if refStd < 0 {
		return 0, fmt.Errorf("netsim: negative reference compute time %v", refStd)
	}
	return Seconds(refStd.Seconds() * StdCPUMHz / d.CPUMHz)
}

// Station is a client endpoint: a device attached to a link. The three
// stations of the paper's platform are predeclared below.
type Station struct {
	Device Device
	Link   Link
}

// The paper's three client configurations (Figure 7).
var (
	Desktop = Station{
		Device: Device{Name: "Desktop", CPU: CPUP4, CPUMHz: 2000, MemMB: 512, OS: OSFedoraCore2},
		Link:   LAN,
	}
	Laptop = Station{
		Device: Device{Name: "Laptop", CPU: CPUP4, CPUMHz: 3060, MemMB: 512, OS: OSFedoraCore2},
		Link:   WLAN,
	}
	PDA = Station{
		Device: Device{Name: "PDA", CPU: CPUPXA255, CPUMHz: 400, MemMB: 64, OS: OSWinCE42},
		Link:   Bluetooth,
	}
)

// Stations returns the paper's three client configurations in evaluation
// order: Desktop-LAN, Laptop-WLAN, PDA-Bluetooth.
func Stations() []Station { return []Station{Desktop, Laptop, PDA} }

// ServerDevice is the application server host: the paper uses a Pentium IV
// 2.0 GHz Fedora Core 2 machine for both the application server and the
// adaptation proxy.
var ServerDevice = Device{Name: "Server", CPU: CPUP4, CPUMHz: 2000, MemMB: 1024, OS: OSFedoraCore2}
