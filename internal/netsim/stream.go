package netsim

import (
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// StreamPair returns the two endpoints of an in-memory full-duplex byte
// stream. Each endpoint implements net.Conn, including read/write
// deadlines (errors.Is(err, os.ErrDeadlineExceeded), Timeout()==true) and
// TCP-like half close via CloseWrite, so protocol servers and clients that
// were written against real sockets run unmodified inside the simulated
// world. Writes never block: the buffer between the endpoints is
// unbounded, like a loopback socket whose window the tests never fill.
// A full Close makes the peer read EOF once it has drained buffered data,
// and fails the peer's subsequent writes — again matching loopback TCP
// closely enough for differential protocol testing.
//
// The pair is purely in-memory and carries no wall-clock behavior of its
// own: blocking reads wait only for peer activity or for the deadline the
// caller armed (time.Until/time.NewTimer, the same bounded-wait pattern
// faultnet uses).
func StreamPair() (*Stream, *Stream) {
	ab := newStreamBuf() // a writes, b reads
	ba := newStreamBuf() // b writes, a reads
	a := &Stream{in: ba, out: ab, local: streamAddr("netsim:a"), remote: streamAddr("netsim:b")}
	b := &Stream{in: ab, out: ba, local: streamAddr("netsim:b"), remote: streamAddr("netsim:a")}
	return a, b
}

// Stream is one endpoint of a StreamPair. It is safe for concurrent use
// in the same sense a net.Conn is: one reader, one writer, plus
// Close/deadline calls from other goroutines.
type Stream struct {
	in, out       *streamBuf
	rd, wd        streamDeadline
	local, remote streamAddr

	closeOnce sync.Once
}

// streamBuf is one direction of the pair: an unbounded buffer plus the
// two half-close flags, guarded by a mutex, with a broadcast channel that
// is closed and replaced on every state change so blocked readers wake.
type streamBuf struct {
	mu      sync.Mutex
	data    []byte
	wclosed bool // writer half-closed: readers drain then see EOF
	rclosed bool // reader endpoint closed: writes fail
	change  chan struct{}
}

func newStreamBuf() *streamBuf {
	return &streamBuf{change: make(chan struct{})}
}

// broadcast wakes every waiter; callers hold b.mu.
func (b *streamBuf) broadcast() {
	close(b.change)
	b.change = make(chan struct{})
}

// Read blocks until buffered bytes, peer half-close (EOF), local close,
// or the armed read deadline.
func (s *Stream) Read(p []byte) (int, error) {
	for {
		s.in.mu.Lock()
		if s.in.rclosed {
			s.in.mu.Unlock()
			return 0, net.ErrClosed
		}
		if len(s.in.data) > 0 {
			n := copy(p, s.in.data)
			rest := len(s.in.data) - n
			copy(s.in.data, s.in.data[n:])
			s.in.data = s.in.data[:rest]
			s.in.mu.Unlock()
			return n, nil
		}
		if s.in.wclosed {
			s.in.mu.Unlock()
			return 0, io.EOF
		}
		wait := s.in.change
		s.in.mu.Unlock()
		if err := s.rd.wait(wait); err != nil {
			return 0, err
		}
	}
}

// Write appends to the peer's read buffer. It never blocks, but an
// already-expired write deadline still fails, matching net.Conn.
func (s *Stream) Write(p []byte) (int, error) {
	if s.wd.expired() {
		return 0, os.ErrDeadlineExceeded
	}
	s.out.mu.Lock()
	defer s.out.mu.Unlock()
	if s.out.wclosed {
		return 0, net.ErrClosed
	}
	if s.out.rclosed {
		return 0, io.ErrClosedPipe
	}
	s.out.data = append(s.out.data, p...)
	s.out.broadcast()
	return len(p), nil
}

// Close tears the endpoint down: local reads and writes fail, the peer
// reads EOF once it drains buffered data, and the peer's writes fail.
func (s *Stream) Close() error {
	s.closeOnce.Do(func() {
		s.out.mu.Lock()
		s.out.wclosed = true
		s.out.broadcast()
		s.out.mu.Unlock()

		s.in.mu.Lock()
		s.in.rclosed = true
		s.in.broadcast()
		s.in.mu.Unlock()
	})
	return nil
}

// CloseWrite half-closes the endpoint: the peer reads EOF after draining,
// while this endpoint keeps reading — the shutdown(SHUT_WR) the INP
// drivers use to signal a clean end-of-trace.
func (s *Stream) CloseWrite() error {
	s.out.mu.Lock()
	defer s.out.mu.Unlock()
	if s.out.wclosed {
		return net.ErrClosed
	}
	s.out.wclosed = true
	s.out.broadcast()
	return nil
}

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return s.local }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr { return s.remote }

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	s.rd.set(t)
	s.wd.set(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.rd.set(t)
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.wd.set(t)
	return nil
}

type streamAddr string

func (a streamAddr) Network() string { return "netsim" }
func (a streamAddr) String() string  { return string(a) }

// streamDeadline is a mutable absolute deadline whose waiters observe
// changes immediately: set closes the change channel so a blocked wait
// re-reads the new deadline (the faultnet deadline pattern).
type streamDeadline struct {
	mu     sync.Mutex
	t      time.Time
	change chan struct{}
}

func (d *streamDeadline) set(t time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.t = t
	if d.change != nil {
		close(d.change)
		d.change = nil
	}
}

// get returns the current deadline and a channel closed when it changes.
func (d *streamDeadline) get() (time.Time, <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.change == nil {
		d.change = make(chan struct{})
	}
	return d.t, d.change
}

// expired reports whether a nonzero deadline has already passed.
func (d *streamDeadline) expired() bool {
	d.mu.Lock()
	t := d.t
	d.mu.Unlock()
	return !t.IsZero() && time.Until(t) <= 0
}

// wait blocks until ready is closed, the deadline fires, or the deadline
// is replaced (in which case it re-evaluates against the new value).
func (d *streamDeadline) wait(ready <-chan struct{}) error {
	for {
		t, changed := d.get()
		if t.IsZero() {
			select {
			case <-ready:
				return nil
			case <-changed:
				continue
			}
		}
		remain := time.Until(t)
		if remain <= 0 {
			return os.ErrDeadlineExceeded
		}
		timer := time.NewTimer(remain)
		select {
		case <-ready:
			timer.Stop()
			return nil
		case <-changed:
			timer.Stop()
			continue
		case <-timer.C:
			return os.ErrDeadlineExceeded
		}
	}
}
