package netsim

import (
	"math/bits"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// logNBound is the per-operation move envelope of a 4-ary heap holding at
// most n elements: ceil(log4 n) levels plus slack for the root/leaf edges.
func logNBound(n int) uint64 {
	if n < 2 {
		return 2
	}
	levels := (bits.Len(uint(n-1)) + 1) / 2 // ceil(log4 n)
	return uint64(levels + 2)
}

func TestEventQueueOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	type ev struct {
		at   time.Duration
		push int
		id   int32
	}
	evs := make([]ev, n)
	q := NewEventQueue(n)
	for i := range evs {
		// Coarse times force plenty of exact ties to exercise the seq
		// tie-break.
		at := time.Duration(rng.Intn(200)) * time.Millisecond
		evs[i] = ev{at: at, push: i, id: int32(i)}
		q.Push(at, int32(i))
	}
	want := append([]ev(nil), evs...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
	for i := 0; i < n; i++ {
		at, id, ok := q.Pop()
		if !ok {
			t.Fatalf("queue empty after %d pops, want %d", i, n)
		}
		if at != want[i].at || id != want[i].id {
			t.Fatalf("pop %d = (%v, %d), want (%v, %d)", i, at, id, want[i].at, want[i].id)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop succeeded on an empty queue")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

func TestEventQueuePeek(t *testing.T) {
	q := NewEventQueue(4)
	if _, _, ok := q.Peek(); ok {
		t.Fatal("Peek succeeded on an empty queue")
	}
	q.Push(3*time.Second, 3)
	q.Push(1*time.Second, 1)
	if at, id, ok := q.Peek(); !ok || at != time.Second || id != 1 {
		t.Fatalf("Peek = (%v, %d, %v), want (1s, 1, true)", at, id, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed an event: Len = %d", q.Len())
	}
}

// TestEventQueueMillionLogN is the fleet-scale regression test: a million
// scheduled events must cost O(log n) moves per operation, counted
// deterministically by the queue's own move tally rather than timed. The
// workload interleaves a bulk load with a running push/pop window, the
// shape of the load harness's arrival-plus-completion timeline.
func TestEventQueueMillionLogN(t *testing.T) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(7))
	q := NewEventQueue(n)
	ops := uint64(0)
	for i := 0; i < n; i++ {
		q.Push(time.Duration(rng.Int63n(int64(time.Hour))), int32(i))
		ops++
	}
	// Running window: each pop schedules a follow-up, as a session
	// completion schedules the next waiter.
	for i := 0; i < n/4; i++ {
		at, id, ok := q.Pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		ops++
		q.Push(at+time.Duration(rng.Int63n(int64(time.Minute))), id)
		ops++
	}
	prev := time.Duration(-1)
	for {
		at, _, ok := q.Pop()
		if !ok {
			break
		}
		ops++
		if at < prev {
			t.Fatalf("pop went backwards: %v after %v", at, prev)
		}
		prev = at
	}
	bound := ops * logNBound(n+1)
	if q.moves > bound {
		t.Fatalf("%d ops did %d element moves, above the O(log n) envelope %d", ops, q.moves, bound)
	}
	t.Logf("%d ops, %d moves (%.2f moves/op, envelope %d/op)", ops, q.moves, float64(q.moves)/float64(ops), logNBound(n+1))
}

// TestEventQueueSteadyStateAllocs pins the zero-allocation contract of the
// running timeline: once capacity is reached, push/pop cycles touch no
// allocator.
func TestEventQueueSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocs-per-run is meaningless")
	}
	q := NewEventQueue(1024)
	for i := 0; i < 1024; i++ {
		q.Push(time.Duration(i)*time.Millisecond, int32(i))
	}
	avg := testing.AllocsPerRun(200, func() {
		at, id, _ := q.Pop()
		q.Push(at+time.Second, id)
	})
	if avg != 0 {
		t.Fatalf("steady-state push/pop allocates %.1f times per cycle, want 0", avg)
	}
}

// TestVirtualClockHeapDiscipline verifies the clock's inlined heap keeps
// the same stable (timestamp, schedule-order) execution order as the old
// container/heap implementation, and stays within the O(log n) move
// envelope under a large schedule.
func TestVirtualClockHeapDiscipline(t *testing.T) {
	const n = 100000
	run := func(seed int64) ([]int, uint64) {
		rng := rand.New(rand.NewSource(seed))
		c := NewVirtualClock()
		order := make([]int, 0, n)
		for i := 0; i < n; i++ {
			i := i
			c.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				order = append(order, i)
			})
		}
		c.Run()
		return order, c.moves
	}
	a, movesA := run(11)
	b, _ := run(11)
	if len(a) != n || len(b) != n {
		t.Fatalf("executed %d/%d events, want %d", len(a), len(b), n)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	bound := uint64(2*n) * logNBound(n)
	if movesA > bound {
		t.Fatalf("%d schedule+run ops did %d moves, above envelope %d", 2*n, movesA, bound)
	}
}

func BenchmarkEventQueueMillion(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(3))
	ats := make([]time.Duration, n)
	for i := range ats {
		ats[i] = time.Duration(rng.Int63n(int64(time.Hour)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		q := NewEventQueue(n)
		for i := 0; i < n; i++ {
			q.Push(ats[i], int32(i))
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	b.ReportMetric(float64(2*n), "events/op")
}

func BenchmarkEventQueueSteadyState(b *testing.B) {
	const n = 1 << 16
	q := NewEventQueue(n)
	for i := 0; i < n; i++ {
		q.Push(time.Duration(i)*time.Microsecond, int32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		at, id, _ := q.Pop()
		q.Push(at+time.Millisecond, id)
	}
}
