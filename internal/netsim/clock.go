// Package netsim provides the simulated execution environment Fractal's
// experiments run on: a deterministic discrete-event virtual clock, network
// link models with application-level efficiency, device profiles with
// CPU-speed scaling, and a capacity-bounded server model for contention
// experiments.
//
// The paper's testbed (physical desktop/laptop/PDA hosts on LAN/WLAN/
// Bluetooth, plus PlanetLab nodes) is replaced by these models; DESIGN.md
// documents why each substitution preserves the behaviour the evaluation
// measures.
package netsim

import (
	"fmt"
	"time"
)

// Clock is the time source used by simulated components. Implementations
// must be safe for use from a single simulation goroutine; the discrete
// event loop itself is single-threaded by design so results are
// deterministic and repeatable.
type Clock interface {
	// Now returns the current virtual time as an offset from the start of
	// the simulation.
	Now() time.Duration
}

// event is a scheduled callback in the virtual timeline.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving schedule order at equal times
	fn  func()
}

// eventBefore is the heap order: timestamp, then schedule order. The pair
// makes the timeline a stable total order, so two runs scheduling the same
// events execute them identically.
func eventBefore(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// VirtualClock is a discrete-event simulation clock. Events are executed in
// timestamp order; executing an event may schedule further events. The zero
// value is ready to use.
//
// The pending set is kept in an inlined 4-ary heap of event values rather
// than container/heap over pointers: no per-event heap allocation, no
// interface boxing on push/pop, and the shallower tree does ~half the
// compare/swap levels of a binary heap at fleet-scale queue depths. The
// moves counter tallies element moves during sifts; the regression test
// pins it to the O(log n)-per-operation envelope at a million events.
type VirtualClock struct {
	now    time.Duration
	seq    uint64
	events []event
	moves  uint64
}

// NewVirtualClock returns a clock positioned at time zero with an empty
// event queue.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Schedule registers fn to run delay after the current virtual time.
// A negative delay is treated as zero.
func (c *VirtualClock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.seq++
	c.events = append(c.events, event{at: c.now + delay, seq: c.seq, fn: fn})
	c.siftUp(len(c.events) - 1)
}

// pop removes and returns the earliest pending event. The queue must be
// non-empty.
func (c *VirtualClock) pop() event {
	e := c.events[0]
	last := len(c.events) - 1
	c.events[0] = c.events[last]
	c.events[last] = event{} // release the callback for GC
	c.events = c.events[:last]
	if last > 0 {
		c.siftDown(0)
	}
	return e
}

// siftUp restores the heap invariant from index i towards the root.
func (c *VirtualClock) siftUp(i int) {
	e := c.events[i]
	for i > 0 {
		p := (i - 1) / 4
		if !eventBefore(e, c.events[p]) {
			break
		}
		c.events[i] = c.events[p]
		c.moves++
		i = p
	}
	c.events[i] = e
}

// siftDown restores the heap invariant from index i towards the leaves.
func (c *VirtualClock) siftDown(i int) {
	n := len(c.events)
	e := c.events[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for j := first + 1; j < last; j++ {
			if eventBefore(c.events[j], c.events[best]) {
				best = j
			}
		}
		if !eventBefore(c.events[best], e) {
			break
		}
		c.events[i] = c.events[best]
		c.moves++
		i = best
	}
	c.events[i] = e
}

// Run drains the event queue, advancing virtual time to each event's
// timestamp before invoking it. It returns the final virtual time.
func (c *VirtualClock) Run() time.Duration {
	for len(c.events) > 0 {
		e := c.pop()
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
	}
	return c.now
}

// Step executes the single earliest pending event, if any, and reports
// whether one was executed.
func (c *VirtualClock) Step() bool {
	if len(c.events) == 0 {
		return false
	}
	e := c.pop()
	if e.at > c.now {
		c.now = e.at
	}
	e.fn()
	return true
}

// Pending returns the number of events waiting in the queue.
func (c *VirtualClock) Pending() int { return len(c.events) }

// Seconds converts a floating-point second count into a Duration, guarding
// against negative and non-finite inputs which would otherwise corrupt the
// timeline.
func Seconds(s float64) (time.Duration, error) {
	if s < 0 || s != s || s > 1e12 {
		return 0, fmt.Errorf("netsim: invalid duration %v seconds", s)
	}
	return time.Duration(s * float64(time.Second)), nil
}

// MustSeconds is Seconds for known-good constants; it panics on invalid
// input and is intended for package-level literals only.
func MustSeconds(s float64) time.Duration {
	d, err := Seconds(s)
	if err != nil {
		panic(err)
	}
	return d
}
