// Package netsim provides the simulated execution environment Fractal's
// experiments run on: a deterministic discrete-event virtual clock, network
// link models with application-level efficiency, device profiles with
// CPU-speed scaling, and a capacity-bounded server model for contention
// experiments.
//
// The paper's testbed (physical desktop/laptop/PDA hosts on LAN/WLAN/
// Bluetooth, plus PlanetLab nodes) is replaced by these models; DESIGN.md
// documents why each substitution preserves the behaviour the evaluation
// measures.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is the time source used by simulated components. Implementations
// must be safe for use from a single simulation goroutine; the discrete
// event loop itself is single-threaded by design so results are
// deterministic and repeatable.
type Clock interface {
	// Now returns the current virtual time as an offset from the start of
	// the simulation.
	Now() time.Duration
}

// event is a scheduled callback in the virtual timeline.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving schedule order at equal times
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// VirtualClock is a discrete-event simulation clock. Events are executed in
// timestamp order; executing an event may schedule further events. The zero
// value is ready to use.
type VirtualClock struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// NewVirtualClock returns a clock positioned at time zero with an empty
// event queue.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Schedule registers fn to run delay after the current virtual time.
// A negative delay is treated as zero.
func (c *VirtualClock) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.seq++
	heap.Push(&c.events, &event{at: c.now + delay, seq: c.seq, fn: fn})
}

// Run drains the event queue, advancing virtual time to each event's
// timestamp before invoking it. It returns the final virtual time.
func (c *VirtualClock) Run() time.Duration {
	for c.events.Len() > 0 {
		e := heap.Pop(&c.events).(*event)
		if e.at > c.now {
			c.now = e.at
		}
		e.fn()
	}
	return c.now
}

// Step executes the single earliest pending event, if any, and reports
// whether one was executed.
func (c *VirtualClock) Step() bool {
	if c.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.events).(*event)
	if e.at > c.now {
		c.now = e.at
	}
	e.fn()
	return true
}

// Pending returns the number of events waiting in the queue.
func (c *VirtualClock) Pending() int { return c.events.Len() }

// Seconds converts a floating-point second count into a Duration, guarding
// against negative and non-finite inputs which would otherwise corrupt the
// timeline.
func Seconds(s float64) (time.Duration, error) {
	if s < 0 || s != s || s > 1e12 {
		return 0, fmt.Errorf("netsim: invalid duration %v seconds", s)
	}
	return time.Duration(s * float64(time.Second)), nil
}

// MustSeconds is Seconds for known-good constants; it panics on invalid
// input and is intended for package-level literals only.
func MustSeconds(s float64) time.Duration {
	d, err := Seconds(s)
	if err != nil {
		panic(err)
	}
	return d
}
