package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

func TestStreamPairRoundTrip(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()

	msg := []byte("hello fractal")
	if n, err := a.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write = %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q, want %q", got, msg)
	}

	// And the reverse direction.
	if _, err := b.Write([]byte("ack")); err != nil {
		t.Fatalf("reverse Write: %v", err)
	}
	got = make([]byte, 3)
	if _, err := io.ReadFull(a, got); err != nil {
		t.Fatalf("reverse ReadFull: %v", err)
	}
	if string(got) != "ack" {
		t.Fatalf("reverse read %q", got)
	}
}

func TestStreamLargeTransfer(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	errc := make(chan error, 1)
	go func() {
		for off := 0; off < len(payload); off += 4096 {
			end := off + 4096
			if end > len(payload) {
				end = len(payload)
			}
			if _, err := a.Write(payload[off:end]); err != nil {
				errc <- err
				return
			}
		}
		errc <- a.CloseWrite()
	}()
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("writer: %v", werr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes", len(got))
	}
}

func TestStreamCloseWriteHalfClose(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()

	if _, err := a.Write([]byte("tail")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := a.CloseWrite(); err != nil {
		t.Fatalf("CloseWrite: %v", err)
	}
	// Peer drains buffered data, then sees EOF.
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll after half-close: %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("drained %q", got)
	}
	// The half-closed endpoint still reads the reverse direction.
	if _, err := b.Write([]byte("reply")); err != nil {
		t.Fatalf("peer Write after half-close: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatalf("read after CloseWrite: %v", err)
	}
	// Writing on the half-closed side fails.
	if _, err := a.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Write after CloseWrite = %v, want net.ErrClosed", err)
	}
}

func TestStreamCloseSemantics(t *testing.T) {
	a, b := StreamPair()
	if _, err := a.Write([]byte("buffered")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Peer still drains data buffered before the close, then EOF.
	got, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("ReadAll after close: %v", err)
	}
	if string(got) != "buffered" {
		t.Fatalf("drained %q", got)
	}
	// Peer writes to a closed endpoint fail.
	if _, err := b.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("peer Write after close = %v, want io.ErrClosedPipe", err)
	}
	// The closed endpoint's own reads fail.
	if _, err := a.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Read after close = %v, want net.ErrClosed", err)
	}
	b.Close()
}

func TestStreamCloseUnblocksReader(t *testing.T) {
	a, b := StreamPair()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	b.Close() // peer close: blocked reader sees EOF
	select {
	case err := <-done:
		if !errors.Is(err, io.EOF) {
			t.Fatalf("Read unblocked with %v, want EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Read did not unblock on peer close")
	}
	a.Close()
}

func TestStreamReadDeadline(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()

	if err := a.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	_, err := a.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want deadline exceeded", err)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("deadline error is not a net.Error timeout: %v", err)
	}

	// Clearing with the zero time makes reads block again.
	if err := a.SetReadDeadline(time.Time{}); err != nil {
		t.Fatalf("clear deadline: %v", err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Write([]byte("late"))
	}()
	buf := make([]byte, 4)
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatalf("read after clearing deadline: %v", err)
	}
}

func TestStreamDeadlineChangeWakesWaiter(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()

	// Arm a far deadline, then move it near while a read is blocked: the
	// waiter must observe the change rather than sleep to the old bound.
	if err := a.SetReadDeadline(time.Now().Add(time.Hour)); err != nil {
		t.Fatalf("SetReadDeadline: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := a.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatalf("move deadline: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("Read = %v, want deadline exceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("moved-up deadline never fired")
	}
}

func TestStreamExpiredWriteDeadline(t *testing.T) {
	a, b := StreamPair()
	defer a.Close()
	defer b.Close()
	if err := a.SetWriteDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatalf("SetWriteDeadline: %v", err)
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Write = %v, want deadline exceeded", err)
	}
}
