package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"fractal/internal/netsim"
)

func TestKindString(t *testing.T) {
	for k := None; k < kindMax; k++ {
		if k.String() == "" || k.String()[0] == 'f' {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "fault(200)" {
		t.Fatalf("unknown kind name = %q", Kind(200).String())
	}
}

func TestStreamTruncateEndsInboundStream(t *testing.T) {
	src := bytes.NewReader(bytes.Repeat([]byte{0xAB}, 64))
	s := NewStream(readWriter{src, io.Discard}, Fault{Kind: Truncate, After: 10}, 1)
	got, err := io.ReadAll(s)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("read %d bytes past truncation, want 10", len(got))
	}
	// io.ReadFull surfaces the mid-frame class of error.
	s2 := NewStream(readWriter{bytes.NewReader(make([]byte, 64)), io.Discard}, Fault{Kind: Truncate, After: 10}, 1)
	if _, err := io.ReadFull(s2, make([]byte, 16)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-frame read error = %v, want ErrUnexpectedEOF", err)
	}
}

// readWriter glues a separate reader and writer into an io.ReadWriter.
type readWriter struct {
	io.Reader
	io.Writer
}

func TestStreamCorruptIsDeterministic(t *testing.T) {
	payload := bytes.Repeat([]byte{0x55}, 32)
	read := func(seed int64) []byte {
		s := NewStream(readWriter{bytes.NewReader(payload), io.Discard}, Fault{Kind: Corrupt, After: 4, Count: 3}, seed)
		got, err := io.ReadAll(s)
		if err != nil {
			t.Fatalf("ReadAll: %v", err)
		}
		return got
	}
	a, b := read(42), read(42)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, payload) {
		t.Fatal("corruption changed nothing")
	}
	for i, by := range a {
		inWindow := i >= 4 && i < 7
		if (by != 0x55) != inWindow {
			t.Fatalf("byte %d = %#x: corruption outside window [4,7)", i, by)
		}
	}
}

func TestStreamResetBothDirections(t *testing.T) {
	var sink bytes.Buffer
	s := NewStream(readWriter{bytes.NewReader(make([]byte, 64)), &sink}, Fault{Kind: Reset, After: 8}, 1)
	if _, err := io.ReadFull(s, make([]byte, 6)); err != nil {
		t.Fatalf("read before reset: %v", err)
	}
	// 6 read + 4 written crosses the 8-byte budget: prefix lands, then reset.
	n, err := s.Write(make([]byte, 4))
	if !errors.Is(err, ErrReset) {
		t.Fatalf("write across budget err = %v, want ErrReset", err)
	}
	if n != 2 {
		t.Fatalf("write across budget wrote %d, want the 2-byte prefix", n)
	}
	if _, err := s.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Fatalf("read after reset err = %v, want ErrReset", err)
	}
}

func TestConnStallReadBoundedByDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WrapConn(a, Fault{Kind: StallRead}, 1)
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(80 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled read err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stalled read took %v, deadline did not bound it", elapsed)
	}
}

func TestConnStallReArmsWhenDeadlineMoves(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := WrapConn(a, Fault{Kind: StallRead}, 1)
	defer c.Close()
	// No deadline yet: the read blocks. Move the deadline from another
	// goroutine; the stalled read must observe it and return.
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("re-armed stall err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read ignored the re-armed deadline")
	}
}

func TestConnStallWithoutDeadlineUnblocksOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := WrapConn(a, Fault{Kind: StallWrite}, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write(make([]byte, 4))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("stall unblocked with %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the stalled write")
	}
}

func TestConnStallWriteAfterPrefix(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := WrapConn(a, Fault{Kind: StallWrite, After: 3}, 1)
	defer c.Close()
	if err := c.SetWriteDeadline(time.Now().Add(60 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	done := make(chan struct{})
	go func() {
		_, _ = io.ReadFull(b, got)
		close(done)
	}()
	n, err := c.Write([]byte("hello"))
	if n != 3 || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("stalled write = (%d, %v), want (3, ErrDeadlineExceeded)", n, err)
	}
	<-done
	if string(got) != "hel" {
		t.Fatalf("peer saw %q, want the 3-byte prefix", got)
	}
}

func TestDialerRefuseThenClean(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	sched := NewSchedule(7, Fault{Kind: Refuse})
	d := &Dialer{Schedule: sched, Timeout: 2 * time.Second}
	if _, err := d.Dial("tcp", ln.Addr().String()); !errors.Is(err, ErrRefused) {
		t.Fatalf("first dial err = %v, want ErrRefused", err)
	}
	// Script exhausted: the second dial is clean and unwrapped.
	conn, err := d.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("post-script dial: %v", err)
	}
	conn.Close()
	counts := sched.Counts()
	if counts["refuse"] != 1 || counts["none"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if sched.Remaining() != 0 {
		t.Fatalf("remaining = %d", sched.Remaining())
	}
}

func TestScheduleForLinkDeterministic(t *testing.T) {
	lossy := netsim.Bluetooth
	lossy.LossRate = 0.5
	consume := func(seed int64) map[string]int64 {
		s, err := ScheduleForLink(lossy, seed, 100)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			s.nextFault()
		}
		return s.Counts()
	}
	a, b := consume(11), consume(11)
	if a["corrupt"] == 0 || a["none"] == 0 {
		t.Fatalf("lossy link schedule not mixed: %v", a)
	}
	if a["corrupt"] != b["corrupt"] {
		t.Fatalf("same seed drew different schedules: %v vs %v", a, b)
	}
	clean, err := ScheduleForLink(netsim.LAN, 11, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if f, _, _ := clean.nextFault(); f.Kind != None {
			t.Fatalf("clean link injected %v", f.Kind)
		}
	}
	if _, err := ScheduleForLink(netsim.Link{}, 1, 1); err == nil {
		t.Fatal("invalid link accepted")
	}
	if _, err := ScheduleForLink(netsim.LAN, 1, -1); err == nil {
		t.Fatal("negative dial count accepted")
	}
}

func TestWrapConnDeadlinePassThrough(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	// A clean wrap must still honor deadlines on the real socket.
	c := WrapConn(a, Fault{Kind: Corrupt, After: 1 << 20}, 1)
	defer c.Close()
	if err := c.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline pass-through", err)
	}
	if c.LocalAddr() == nil || c.RemoteAddr() == nil {
		t.Fatal("addr delegation broken")
	}
}
