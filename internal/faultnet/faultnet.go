// Package faultnet is a deterministic, seed-driven network fault
// injector for exercising Fractal's resilience plane. It wraps byte
// streams (io.ReadWriter) and live sockets (net.Conn) and injects
// connection refusal, read/write stalls, mid-frame truncation, byte
// corruption, and connection resets according to a scripted Schedule:
// faults are consumed in dial order, so a given (schedule, seed) pair
// produces byte-identical outcomes run after run, regardless of wall
// clock or goroutine interleaving.
//
// Determinism rules (the same invariants fractal-vet enforces for the
// simulator): corruption bytes come from a *rand.Rand derived from the
// schedule seed and the connection's dial index — never from the global
// math/rand source — and nothing in the fault decision path reads the
// wall clock. The only time-dependent behaviour is a stall, which by
// construction lasts until the victim's own I/O deadline (or Close)
// fires; a stalled call on a deadline-bounded connection therefore
// always returns os.ErrDeadlineExceeded in bounded time, and a stalled
// call with no deadline documents the caller's bug by blocking until
// Close.
package faultnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"fractal/internal/netsim"
)

// Kind enumerates the injectable fault classes.
type Kind uint8

// The fault classes of the resilience test plan: everything the paper's
// hostile pervasive environments do to a connection short of lying
// plausibly (which corruption approximates).
const (
	// None lets the connection behave normally.
	None Kind = iota
	// Refuse fails the dial itself with ErrRefused.
	Refuse
	// StallRead blocks the first Read at or past Fault.After bytes until
	// the read deadline expires or the connection is closed.
	StallRead
	// StallWrite blocks the first Write at or past Fault.After bytes
	// until the write deadline expires or the connection is closed.
	StallWrite
	// Truncate ends the inbound stream after Fault.After bytes, as if
	// the peer closed mid-frame: the reader sees io.EOF.
	Truncate
	// Corrupt XORs Fault.Count inbound bytes (default 1) starting at
	// offset Fault.After with nonzero masks drawn from the seeded rand.
	Corrupt
	// Reset kills the connection after Fault.After total bytes in either
	// direction: both Read and Write return ErrReset.
	Reset
	kindMax
)

var kindNames = [...]string{
	None: "none", Refuse: "refuse", StallRead: "stall-read",
	StallWrite: "stall-write", Truncate: "truncate", Corrupt: "corrupt",
	Reset: "reset",
}

// String names the fault class.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Typed injection errors, so tests and callers can distinguish an
// injected failure from an organic one with errors.Is.
var (
	// ErrRefused is returned by Dialer.Dial for a Refuse fault.
	ErrRefused = errors.New("faultnet: connection refused (injected)")
	// ErrReset is returned by Read/Write once a Reset fault fires.
	ErrReset = errors.New("faultnet: connection reset (injected)")
)

// Fault is one scripted fault applied to one connection.
type Fault struct {
	Kind Kind
	// After is the number of bytes allowed through before the fault
	// fires (truncate, corrupt, stall, reset). Zero fires immediately.
	After int
	// Count is how many bytes a Corrupt fault flips; zero means one.
	Count int
}

// Schedule is a deterministic fault script. Each dialed connection
// consumes the next Fault in order; once the script is exhausted every
// further connection is clean. A Schedule is safe for concurrent use,
// but note that concurrent dials race for script positions — drive
// dials sequentially when byte-reproducibility across runs matters.
type Schedule struct {
	mu     sync.Mutex
	seed   int64
	faults []Fault
	next   int
	counts [kindMax]int64
}

// NewSchedule builds a script over the given faults. The seed drives
// corruption masks; two schedules with equal faults and seeds inject
// byte-identical damage.
func NewSchedule(seed int64, faults ...Fault) *Schedule {
	return &Schedule{seed: seed, faults: append([]Fault(nil), faults...)}
}

// ScheduleForLink derives a fault script from a netsim link model: over
// `dials` connections, each faults with probability link.LossRate
// (corrupting one early byte), drawn from a rand seeded by `seed` so the
// script is reproducible. A clean link yields an all-clean script. This
// is the bridge between the simulator's loss model and the live TCP
// plane: the same LossRate that scales simulated bandwidth now damages
// real frames.
func ScheduleForLink(link netsim.Link, seed int64, dials int) (*Schedule, error) {
	if err := link.Validate(); err != nil {
		return nil, fmt.Errorf("faultnet: %w", err)
	}
	if dials < 0 {
		return nil, fmt.Errorf("faultnet: negative dial count %d", dials)
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, dials)
	for i := range faults {
		if rng.Float64() < link.LossRate {
			faults[i] = Fault{Kind: Corrupt, After: rng.Intn(16), Count: 1}
		}
	}
	return NewSchedule(seed, faults...), nil
}

// nextFault pops the script entry for the next connection, returning the
// fault, the dial index, and the per-connection corruption seed.
func (s *Schedule) nextFault() (Fault, int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.next
	s.next++
	var f Fault
	if idx < len(s.faults) {
		f = s.faults[idx]
	}
	s.counts[f.Kind]++
	// Mix the dial index into the seed (splitmix-style odd constant) so
	// each connection's corruption stream is independent of scheduling.
	return f, idx, s.seed ^ (int64(idx+1) * int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF))
}

// Counts reports how many connections drew each fault kind so far,
// keyed by Kind.String(). Clean dials past the end of the script count
// under "none".
func (s *Schedule) Counts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int64{}
	for k, n := range s.counts {
		if n > 0 {
			out[Kind(k).String()] = n
		}
	}
	return out
}

// Remaining reports how many scripted faults have not yet been consumed.
func (s *Schedule) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.faults) {
		return 0
	}
	return len(s.faults) - s.next
}
