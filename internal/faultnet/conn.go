package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// stream applies the byte-level fault classes (truncate, corrupt, reset)
// to a raw byte stream. It is the engine shared by Stream (io.ReadWriter
// wrapping) and Conn (net.Conn wrapping); the caller provides locking.
type stream struct {
	fault    Fault
	rng      *rand.Rand
	readOff  int // cumulative inbound bytes
	writeOff int // cumulative outbound bytes
}

func newStream(f Fault, seed int64) *stream {
	if f.Kind == Corrupt && f.Count <= 0 {
		f.Count = 1
	}
	return &stream{fault: f, rng: rand.New(rand.NewSource(seed))}
}

// readBudget returns how many inbound bytes may still pass before the
// fault fires, or a negative number when the fault class does not bound
// reads.
func (s *stream) readBudget() int {
	switch s.fault.Kind {
	case Truncate, StallRead:
		return s.fault.After - s.readOff
	case Reset:
		return s.fault.After - (s.readOff + s.writeOff)
	}
	return -1
}

// corrupt XORs the bytes of p that fall inside the corruption window
// [After, After+Count) of the cumulative inbound stream. Masks are drawn
// from the seeded rand and never zero, so a corrupted byte always
// changes.
func (s *stream) corrupt(p []byte, n int) {
	start, count := s.fault.After, s.fault.Count
	for i := 0; i < n; i++ {
		off := s.readOff + i
		if off >= start && off < start+count {
			p[i] ^= byte(1 + s.rng.Intn(255))
		}
	}
}

// Stream wraps a plain byte stream with the deterministic byte-level
// faults (truncate, corrupt, reset). Stalls and refusal need a dialed
// net.Conn with deadlines — use a Dialer for those. A Stream is safe for
// concurrent use.
type Stream struct {
	rw io.ReadWriter
	mu sync.Mutex
	st *stream
}

// NewStream wraps rw with one fault. Refuse, StallRead, and StallWrite
// are not meaningful on an undialed stream and behave as None.
func NewStream(rw io.ReadWriter, f Fault, seed int64) *Stream {
	return &Stream{rw: rw, st: newStream(f, seed)}
}

// Read implements io.Reader with the scripted fault applied.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	switch st.fault.Kind {
	case Truncate:
		if b := st.readBudget(); b <= 0 {
			return 0, io.EOF
		} else if len(p) > b {
			p = p[:b]
		}
	case Reset:
		if b := st.readBudget(); b <= 0 {
			return 0, ErrReset
		} else if len(p) > b {
			p = p[:b]
		}
	}
	n, err := s.rw.Read(p)
	if st.fault.Kind == Corrupt {
		st.corrupt(p, n)
	}
	st.readOff += n
	return n, err
}

// Write implements io.Writer with the scripted fault applied.
func (s *Stream) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	if st.fault.Kind == Reset {
		b := st.fault.After - (st.readOff + st.writeOff)
		if b <= 0 {
			return 0, ErrReset
		}
		if len(p) > b {
			n, err := s.rw.Write(p[:b])
			st.writeOff += n
			if err != nil {
				return n, err
			}
			return n, ErrReset
		}
	}
	n, err := s.rw.Write(p)
	st.writeOff += n
	return n, err
}

// deadline is one direction's I/O deadline with change notification, so
// a stalled call re-arms when the victim moves its own deadline.
type deadline struct {
	mu      sync.Mutex
	t       time.Time
	changed chan struct{}
}

func newDeadline() *deadline { return &deadline{changed: make(chan struct{})} }

func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	d.t = t
	close(d.changed)
	d.changed = make(chan struct{})
	d.mu.Unlock()
}

func (d *deadline) get() (time.Time, chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.t, d.changed
}

// Conn wraps a live net.Conn with one scripted fault. It implements
// net.Conn; deadlines set by the application pass through to the real
// socket and also bound injected stalls, so a deadline-disciplined
// caller always returns from a stalled call with os.ErrDeadlineExceeded
// in bounded time. Conn is safe for concurrent use.
type Conn struct {
	nc net.Conn

	mu sync.Mutex
	st *stream

	rd, wd *deadline

	closeOnce sync.Once
	closed    chan struct{}
}

// WrapConn applies one fault to an established connection.
func WrapConn(nc net.Conn, f Fault, seed int64) *Conn {
	return &Conn{
		nc: nc, st: newStream(f, seed),
		rd: newDeadline(), wd: newDeadline(),
		closed: make(chan struct{}),
	}
}

// stall blocks until the given deadline passes or the connection is
// closed, mirroring a peer (or path) that has silently gone away.
func (c *Conn) stall(d *deadline) error {
	for {
		t, changed := d.get()
		var fire <-chan time.Time
		var timer *time.Timer
		if !t.IsZero() {
			wait := time.Until(t)
			if wait <= 0 {
				return os.ErrDeadlineExceeded
			}
			timer = time.NewTimer(wait)
			fire = timer.C
		}
		select {
		case <-fire:
			return os.ErrDeadlineExceeded
		case <-changed:
			// Deadline moved: re-arm against the new value.
		case <-c.closed:
			if timer != nil {
				timer.Stop()
			}
			return net.ErrClosed
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	st := c.st
	switch st.fault.Kind {
	case StallRead:
		if b := st.readBudget(); b <= 0 {
			c.mu.Unlock()
			return 0, c.stall(c.rd)
		} else if len(p) > b {
			p = p[:b]
		}
	case Truncate:
		if b := st.readBudget(); b <= 0 {
			c.mu.Unlock()
			c.closeUnderlying()
			return 0, io.EOF
		} else if len(p) > b {
			p = p[:b]
		}
	case Reset:
		if b := st.readBudget(); b <= 0 {
			c.mu.Unlock()
			c.closeUnderlying()
			return 0, ErrReset
		} else if len(p) > b {
			p = p[:b]
		}
	}
	c.mu.Unlock()
	// The socket read happens outside the lock so a concurrent Write is
	// not serialized behind a blocking Read.
	n, err := c.nc.Read(p)
	c.mu.Lock()
	if st.fault.Kind == Corrupt {
		st.corrupt(p, n)
	}
	st.readOff += n
	c.mu.Unlock()
	return n, err
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	st := c.st
	allowed := len(p)
	var terminal error
	switch st.fault.Kind {
	case StallWrite:
		b := st.fault.After - st.writeOff
		if b <= 0 {
			c.mu.Unlock()
			return 0, c.stall(c.wd)
		}
		if allowed > b {
			allowed = b
			terminal = nil // stall after the prefix lands
		}
	case Reset:
		b := st.fault.After - (st.readOff + st.writeOff)
		if b <= 0 {
			c.mu.Unlock()
			c.closeUnderlying()
			return 0, ErrReset
		}
		if allowed > b {
			allowed = b
			terminal = ErrReset
		}
	}
	c.mu.Unlock()
	n, err := c.nc.Write(p[:allowed])
	c.mu.Lock()
	st.writeOff += n
	c.mu.Unlock()
	if err != nil {
		return n, err
	}
	if allowed < len(p) {
		if terminal != nil {
			c.closeUnderlying()
			return n, terminal
		}
		// StallWrite: the prefix landed, the rest never will.
		return n, c.stall(c.wd)
	}
	return n, nil
}

// closeUnderlying tears down the real socket (so the peer observes the
// failure too) without marking the wrapper closed.
func (c *Conn) closeUnderlying() { _ = c.nc.Close() }

// Close implements net.Conn.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.nc.Close()
	})
	return err
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.set(t)
	c.wd.set(t)
	return c.nc.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.rd.set(t)
	return c.nc.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.wd.set(t)
	return c.nc.SetWriteDeadline(t)
}

// Dialer dials through a fault schedule: each Dial consumes the next
// scripted fault. A nil Schedule dials clean, so a Dialer can stand in
// for net.Dial unconditionally. Dialer is safe for concurrent use.
type Dialer struct {
	// Schedule scripts the faults; nil means every dial is clean.
	Schedule *Schedule
	// Timeout bounds the underlying TCP dial; zero means no bound.
	Timeout time.Duration
}

// Dial connects like net.DialTimeout and wraps the connection with the
// next scripted fault. A Refuse fault fails here without touching the
// network.
func (d *Dialer) Dial(network, addr string) (net.Conn, error) {
	f := Fault{}
	var seed int64
	if d.Schedule != nil {
		f, _, seed = d.Schedule.nextFault()
	}
	if f.Kind == Refuse {
		return nil, fmt.Errorf("faultnet: dial %s: %w", addr, ErrRefused)
	}
	nc, err := net.DialTimeout(network, addr, d.Timeout)
	if err != nil {
		return nil, err
	}
	if f.Kind == None {
		return nc, nil
	}
	return WrapConn(nc, f, seed), nil
}
