package fractal

import (
	"testing"

	"fractal/internal/netsim"
)

// The facade must stay wired to working constructors; this exercises the
// exported surface end to end in-process.
func TestFacadeSurface(t *testing.T) {
	names := CodecNames()
	want := map[string]bool{
		ProtocolDirect: false, ProtocolGzip: false,
		ProtocolBitmap: false, ProtocolVaryBlock: false,
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for proto, seen := range want {
		if !seen {
			t.Errorf("facade registry missing %q", proto)
		}
	}
	c, err := NewCodec(ProtocolGzip)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := c.Encode(nil, []byte("hello fractal"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(nil, payload)
	if err != nil || string(got) != "hello fractal" {
		t.Fatalf("facade codec round trip = %q, %v", got, err)
	}

	ms, err := CaseStudyMatrices()
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := ContentAdaptationMatrices(); err != nil {
		t.Fatal(err)
	}
	if len(Stations()) != 3 {
		t.Fatal("facade stations broken")
	}
	env := EnvFor(netsim.PDA)
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
	if NewPolicyTable() == nil {
		t.Fatal("facade policy table broken")
	}
	signer, err := NewSigner("facade-test")
	if err != nil {
		t.Fatal(err)
	}
	trust := NewTrustList()
	if err := trust.Add(signer.Entity, signer.PublicKey()); err != nil {
		t.Fatal(err)
	}
	if err := DefaultSandbox().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := DefaultCDNTopology(2); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	if cfg.Pages != 75 {
		t.Fatalf("default experiment pages = %d", cfg.Pages)
	}
}
