// Package fractal is the public facade of the Fractal framework, a
// reproduction of "Fractal: A Mobile Code Based Framework for Dynamic
// Application Protocol Adaptation in Pervasive Computing" (Lufei & Shi,
// IPPS 2005).
//
// Fractal composes application protocols from protocol adaptors (PADs)
// packaged as mobile-code modules. An adaptation proxy near the
// application server negotiates with each client over the Interactive
// Negotiation Protocol, runs an adaptation path search over a protocol
// adaptation tree using a linear overhead model with normalized-ratio
// corrections, and points the client at the PADs to download from CDN
// edgeservers. After digest and code-signing checks the client deploys the
// PADs in a sandboxed VM and talks to the server with the negotiated
// protocol.
//
// The facade re-exports the user-facing API of the internal packages:
//
//   - metadata, PAT, overhead model, path search (internal/core)
//   - adaptation proxy + INP daemon (internal/proxy)
//   - application server (internal/appserver)
//   - client host (internal/client)
//   - mobile-code modules, signing, sandbox (internal/mobilecode)
//   - communication-optimization protocols (internal/codec)
//   - CDN substrate (internal/cdn)
//   - simulated devices and links (internal/netsim)
//   - workload generator (internal/workload)
//   - evaluation harness (internal/experiment)
//
// See examples/quickstart for a complete in-process deployment.
package fractal

import (
	"fractal/internal/appserver"
	"fractal/internal/cdn"
	"fractal/internal/client"
	"fractal/internal/codec"
	"fractal/internal/core"
	"fractal/internal/experiment"
	"fractal/internal/mobilecode"
	"fractal/internal/netsim"
	"fractal/internal/proxy"
	"fractal/internal/workload"
)

// Core framework types (Section 3 of the paper).
type (
	// DevMeta is client device metadata (Figure 3).
	DevMeta = core.DevMeta
	// NtwkMeta is client network metadata (Figure 3).
	NtwkMeta = core.NtwkMeta
	// Env is one client environment.
	Env = core.Env
	// PADMeta is protocol-adaptor metadata (Figure 3).
	PADMeta = core.PADMeta
	// PADOverhead is the pre-measured overhead vector of a PAD.
	PADOverhead = core.PADOverhead
	// AppMeta is the application topology pushed to the proxy.
	AppMeta = core.AppMeta
	// PAT is the protocol adaptation tree (Section 3.4.1).
	PAT = core.PAT
	// OverheadModel evaluates Equation 3.
	OverheadModel = core.OverheadModel
	// Breakdown is the per-term decomposition of Equation 3.
	Breakdown = core.Breakdown
	// PathResult is the outcome of the adaptation path search.
	PathResult = core.PathResult
	// Matrices bundles the normalized ratio matrices A, B, R.
	Matrices = core.Matrices
	// RatioMatrix is one normalized ratio matrix.
	RatioMatrix = core.RatioMatrix
)

// Deployment roles.
type (
	// Proxy is the adaptation proxy (Section 3.2).
	Proxy = proxy.Proxy
	// ProxyServer is the proxy's INP daemon.
	ProxyServer = proxy.Server
	// AppServer is the application server.
	AppServer = appserver.Server
	// AppINPServer is the application server's INP daemon.
	AppINPServer = appserver.INPServer
	// Client is a Fractal client host.
	Client = client.Client
	// ClientConfig parameterizes a client host.
	ClientConfig = client.Config
	// CDN is the content distribution network substrate.
	CDN = cdn.CDN
	// Module is a packed, signed PAD mobile-code module.
	Module = mobilecode.Module
	// Signer is a code-signing identity.
	Signer = mobilecode.Signer
	// TrustList is a client's set of trusted signing entities.
	TrustList = mobilecode.TrustList
	// Sandbox bounds mobile-code execution.
	Sandbox = mobilecode.Sandbox
	// Codec is one communication-optimization protocol.
	Codec = codec.Codec
	// Station is a simulated client device + link.
	Station = netsim.Station
	// Corpus is a versioned content set.
	Corpus = workload.Corpus
	// ExperimentSetup is a fully wired evaluation platform.
	ExperimentSetup = experiment.Setup
)

// Constructors and helpers.
var (
	// BuildPAT constructs a protocol adaptation tree from AppMeta.
	BuildPAT = core.BuildPAT
	// FindPath runs the adaptation path search (Figure 6).
	FindPath = core.FindPath
	// CaseStudyMatrices returns the matrices of Equations 4-6.
	CaseStudyMatrices = core.CaseStudyMatrices
	// ContentAdaptationMatrices extends them for two-level topologies
	// with rendition suitability (the screen-resolution parameter).
	ContentAdaptationMatrices = core.ContentAdaptationMatrices
	// NewPolicyTable builds a per-principal protocol allowlist for the
	// proxy's access-control extension.
	NewPolicyTable = proxy.NewPolicyTable
	// NewProxy builds an adaptation proxy.
	NewProxy = proxy.New
	// NewProxyServer wraps a proxy in an INP daemon.
	NewProxyServer = proxy.NewServer
	// NewAppServer builds an application server.
	NewAppServer = appserver.New
	// NewAppINPServer wraps an application server in an INP daemon.
	NewAppINPServer = appserver.NewINPServer
	// NewClient wires a client host.
	NewClient = client.New
	// NewSigner generates a code-signing identity.
	NewSigner = mobilecode.NewSigner
	// NewTrustList returns an empty trust list.
	NewTrustList = mobilecode.NewTrustList
	// DefaultSandbox returns sane mobile-code resource limits.
	DefaultSandbox = mobilecode.DefaultSandbox
	// NewCodec constructs a registered protocol by name.
	NewCodec = codec.New
	// CodecNames lists the registered protocols.
	CodecNames = codec.Names
	// DefaultCDNTopology builds the experimental CDN.
	DefaultCDNTopology = cdn.DefaultTopology
	// GenerateCorpus builds the deterministic page corpus.
	GenerateCorpus = workload.Generate
	// MutateCorpus evolves a corpus to its next version.
	MutateCorpus = workload.MutateCorpus
	// NewExperimentSetup wires the full evaluation platform.
	NewExperimentSetup = experiment.NewSetup
	// DefaultExperimentConfig matches the paper's platform.
	DefaultExperimentConfig = experiment.DefaultSetupConfig
	// Stations returns the paper's three client configurations.
	Stations = netsim.Stations
	// EnvFor converts a station to negotiation metadata.
	EnvFor = experiment.EnvFor
)

// Protocol registry names of the case study (Table 1).
const (
	ProtocolDirect    = codec.NameDirect
	ProtocolGzip      = codec.NameGzip
	ProtocolBitmap    = codec.NameBitmap
	ProtocolVaryBlock = codec.NameVaryBlock
)
